// Package storage simulates the one-dimensional storage medium the paper's
// introduction motivates: records placed on fixed-size disk pages in the
// order a locality-preserving mapping assigns, an LRU buffer pool, and I/O
// accounting (pages touched, seeks, scan spans) for range queries. It turns
// the abstract "rank distance" the metrics package measures into concrete
// page-I/O differences between mappings.
package storage

import (
	"context"
	"fmt"
	"slices"

	"github.com/spectral-lpm/spectrallpm/internal/errs"
	"github.com/spectral-lpm/spectrallpm/internal/order"
	"github.com/spectral-lpm/spectrallpm/internal/workload"
)

// Pager maps record ranks to fixed-size pages: the record at rank r lives
// on page r / RecordsPerPage.
type Pager struct {
	numRecords     int
	recordsPerPage int
	numPages       int
}

// NewPager returns a pager for numRecords records at recordsPerPage records
// per page.
func NewPager(numRecords, recordsPerPage int) (*Pager, error) {
	if numRecords < 0 {
		return nil, fmt.Errorf("storage: negative record count %d", numRecords)
	}
	if recordsPerPage < 1 {
		return nil, fmt.Errorf("storage: records per page %d < 1", recordsPerPage)
	}
	// Divide before rounding: the textbook (n + per - 1) / per ceiling wraps
	// when numRecords sits near MaxInt and per is large — record counts
	// reach this constructor from untrusted index files.
	numPages := numRecords / recordsPerPage
	if numRecords%recordsPerPage != 0 {
		numPages++
	}
	return &Pager{
		numRecords:     numRecords,
		recordsPerPage: recordsPerPage,
		numPages:       numPages,
	}, nil
}

// Page returns the page holding the record at the given rank. A rank
// outside [0, NumRecords) returns an error wrapping errs.ErrRankOutOfRange
// (never panics: a malformed query must not crash a server).
func (p *Pager) Page(rank int) (int, error) {
	if rank < 0 || rank >= p.numRecords {
		return 0, fmt.Errorf("storage: rank %d outside [0,%d): %w", rank, p.numRecords, errs.ErrRankOutOfRange)
	}
	return rank / p.recordsPerPage, nil
}

// NumRecords returns the number of records laid on pages.
func (p *Pager) NumRecords() int { return p.numRecords }

// NumPages returns the number of pages.
func (p *Pager) NumPages() int { return p.numPages }

// RecordsPerPage returns the page capacity.
func (p *Pager) RecordsPerPage() int { return p.recordsPerPage }

// IOStats is the disk cost of answering one query.
type IOStats struct {
	// Pages is the number of distinct pages holding query results — the
	// selective (index-driven) read cost.
	Pages int
	// Seeks is the number of contiguous page runs; each run beyond the
	// first costs a random seek (Moon et al.'s cluster count at page
	// granularity).
	Seeks int
	// SpanPages is maxPage − minPage + 1 — the sequential-scan cost of
	// reading from the first to the last result page, the access pattern
	// the paper's Figure 6 measures (smaller span, shorter scan).
	SpanPages int
}

// PageRun is a maximal run of contiguous pages a query touches — the unit
// of sequential I/O an executor can issue as one read.
type PageRun struct {
	// Start is the first page of the run.
	Start int
	// Pages is the run length in pages (always >= 1).
	Pages int
}

// Runs returns the page-run plan for a query whose results live at the
// given ranks: the distinct pages holding results, grouped into maximal
// contiguous runs and sorted by start page. An empty rank set plans
// nothing; an out-of-range rank returns an error wrapping
// errs.ErrRankOutOfRange.
func (p *Pager) Runs(ranks []int) ([]PageRun, error) {
	return p.RunsAppend(nil, ranks)
}

// RunsAppend is Runs appending to dst, so a serving loop can reuse one
// []PageRun across queries without allocating. Validation is hoisted out of
// the per-rank loop: sorted input (the common case — box-query engines emit
// ranks in ascending order) is range-checked by its endpoints and folded
// into runs in one linear pass with no page buffer and no sort; unsorted
// input is sorted into pooled scratch first.
func (p *Pager) RunsAppend(dst []PageRun, ranks []int) ([]PageRun, error) {
	if len(ranks) == 0 {
		return dst, nil
	}
	ranks, sc, err := p.sortedRanks(ranks)
	if sc != nil {
		defer boxScratchPool.Put(sc)
	}
	if err != nil {
		return dst, err
	}
	prev := -1
	for _, r := range ranks {
		pg := r / p.recordsPerPage
		switch {
		case pg == prev:
			// Another record on the current page.
		case prev >= 0 && pg == prev+1:
			dst[len(dst)-1].Pages++
		default:
			dst = append(dst, PageRun{Start: pg, Pages: 1})
		}
		prev = pg
	}
	return dst, nil
}

// sortedRanks returns ranks in ascending order, range-checked once against
// [0, NumRecords). Already-sorted input (detected in one scan) is returned
// as-is; otherwise it is copied into pooled scratch and sorted there, and
// the scratch holder is returned for the caller to release.
func (p *Pager) sortedRanks(ranks []int) ([]int, *boxScratch, error) {
	sorted := true
	for i := 1; i < len(ranks); i++ {
		if ranks[i] < ranks[i-1] {
			sorted = false
			break
		}
	}
	var sc *boxScratch
	if !sorted {
		sc = boxScratchPool.Get().(*boxScratch)
		sc.ranks = append(sc.ranks[:0], ranks...)
		slices.Sort(sc.ranks)
		ranks = sc.ranks
	}
	if lo := ranks[0]; lo < 0 {
		return ranks, sc, fmt.Errorf("storage: rank %d outside [0,%d): %w", lo, p.numRecords, errs.ErrRankOutOfRange)
	}
	if hi := ranks[len(ranks)-1]; hi >= p.numRecords {
		return ranks, sc, fmt.Errorf("storage: rank %d outside [0,%d): %w", hi, p.numRecords, errs.ErrRankOutOfRange)
	}
	return ranks, sc, nil
}

// QueryIO computes the I/O statistics for a query whose results live at the
// given ranks, in a single allocation-free pass (no page-run plan is
// materialized). An empty rank set costs nothing; an out-of-range rank
// returns an error wrapping errs.ErrRankOutOfRange.
func (p *Pager) QueryIO(ranks []int) (IOStats, error) {
	if len(ranks) == 0 {
		return IOStats{}, nil
	}
	ranks, sc, err := p.sortedRanks(ranks)
	if sc != nil {
		defer boxScratchPool.Put(sc)
	}
	if err != nil {
		return IOStats{}, err
	}
	var st IOStats
	first := ranks[0] / p.recordsPerPage
	prev := -1
	for _, r := range ranks {
		pg := r / p.recordsPerPage
		if pg == prev {
			continue
		}
		st.Pages++
		if prev < 0 || pg > prev+1 {
			st.Seeks++
		}
		prev = pg
	}
	st.SpanPages = prev - first + 1
	return st, nil
}

// Store couples a mapping with a pager so grid range queries can be costed
// directly. NewStore precomputes the rank-ordered layout the box-query
// engine consults, so every query after build is allocation-free (pooled
// scratch) and sort-free on the common path.
type Store struct {
	mapping *order.Mapping
	pager   *Pager
	layout  *rankLayout
}

// NewStore lays the mapping's grid points on pages in rank order, building
// an owned frame (the packed row layout is computed here): the frame is
// assembled in this function from the mapping's own slices, and nothing is
// mapped yet at build time.
//
//lpm:ownsframe
func NewStore(m *order.Mapping, recordsPerPage int) (*Store, error) {
	f := Frame{Rank: m.Ranks(), Vert: m.Verts()}
	f.Rows = BuildRows(m.Grid(), f.Rank)
	return NewStoreFromFrame(m, f, recordsPerPage)
}

// NewStoreFromFrame attaches a store to an existing frame without
// rebuilding the row layout — the zero-copy open path for indexes whose
// frame is borrowed from a read-only mapped region. The frame must be
// internally consistent (rank a permutation, rows exactly BuildRows of
// rank); the codec validates borrowed frames before they reach here.
func NewStoreFromFrame(m *order.Mapping, f Frame, recordsPerPage int) (*Store, error) {
	p, err := NewPager(m.N(), recordsPerPage)
	if err != nil {
		return nil, err
	}
	return &Store{mapping: m, pager: p, layout: newRankLayout(m.Grid(), f)}, nil
}

// Frame returns the store's flat serving state — the slices the v2 codec
// persists. The slices must be treated as read-only.
func (s *Store) Frame() Frame {
	return Frame{Rank: s.layout.rank, Vert: s.mapping.Verts(), Rows: s.layout.rows}
}

// Mapping returns the underlying mapping.
func (s *Store) Mapping() *order.Mapping { return s.mapping }

// Pager returns the underlying pager.
func (s *Store) Pager() *Pager { return s.pager }

// CheckBox validates a box against the store's grid without running the
// query: full arity on both Start and Dims, every side at least 1, and the
// whole box inside the grid. Callers that defer the actual scan (lazy
// iterators, shard planners) use it to fail fast at request time.
func (s *Store) CheckBox(b workload.Box) error { return s.checkBox(b) }

// checkBox validates a box against the store's grid.
func (s *Store) checkBox(b workload.Box) error {
	g := s.mapping.Grid()
	if len(b.Start) != g.D() || len(b.Dims) != g.D() {
		return fmt.Errorf("storage: box arity %d/%d, grid %d: %w", len(b.Start), len(b.Dims), g.D(), errs.ErrDimensionMismatch)
	}
	for i, st := range b.Start {
		if b.Dims[i] < 1 || st < 0 || st+b.Dims[i] > g.Dims()[i] {
			return fmt.Errorf("storage: box %v exceeds grid %v: %w", b, g.Dims(), errs.ErrDimensionMismatch)
		}
	}
	return nil
}

// BoxRanks returns the 1-D ranks of the grid points inside the box, in
// ascending rank order — the scan order a serving path streams results in.
func (s *Store) BoxRanks(b workload.Box) ([]int, error) {
	return s.BoxRanksAppend(nil, b)
}

// BoxRanksAppend is BoxRanks appending to dst, so a serving loop can reuse
// one rank buffer across queries without allocating.
func (s *Store) BoxRanksAppend(dst []int, b workload.Box) ([]int, error) {
	if err := s.checkBox(b); err != nil {
		return dst, err
	}
	return s.AppendValidatedBoxRanks(dst, b.Start, b.Dims), nil
}

// AppendValidatedBoxRanks appends the ascending ranks of the cells inside
// a box that already passed CheckBox, skipping re-validation — the hot
// path of serving cores that validate once at request time. All scratch is
// pooled; with sufficient dst capacity it allocates nothing.
func (s *Store) AppendValidatedBoxRanks(dst []int, start, dims []int) []int {
	sc := boxScratchPool.Get().(*boxScratch)
	dst = s.layout.appendBoxRanks(dst, start, dims, sc)
	boxScratchPool.Put(sc)
	return dst
}

// AppendValidatedBoxRanksCtx is AppendValidatedBoxRanks under a request
// context: the engine polls ctx at its chunk boundaries (per gathered slab,
// per merge pop — never mid-bitmap) and stops early when the request is
// dead. On a non-nil error the appended region's contents are unspecified
// and the caller must discard them; dst's backing buffer is still returned
// so an amortized buffer survives cancellation.
//
//lpm:ctxaware — arms the scratch poll budget and delegates to the engine
func (s *Store) AppendValidatedBoxRanksCtx(ctx context.Context, dst []int, start, dims []int) ([]int, error) {
	sc := boxScratchPool.Get().(*boxScratch)
	sc.ctx = ctx
	sc.budget = cancelCheckInterval
	dst = s.layout.appendBoxRanks(dst, start, dims, sc)
	err := sc.err
	sc.ctx, sc.err = nil, nil
	boxScratchPool.Put(sc)
	return dst, err
}

// BoxQueryIO returns the I/O cost of an axis-aligned box query without
// materializing ranks or runs for the caller (pooled scratch only).
func (s *Store) BoxQueryIO(b workload.Box) (IOStats, error) {
	if err := s.checkBox(b); err != nil {
		return IOStats{}, err
	}
	sc := boxScratchPool.Get().(*boxScratch)
	defer boxScratchPool.Put(sc)
	sc.ranks = s.layout.appendBoxRanks(sc.ranks[:0], b.Start, b.Dims, sc)
	return s.pager.QueryIO(sc.ranks)
}

// BoxRuns returns the page-run plan of an axis-aligned box query.
func (s *Store) BoxRuns(b workload.Box) ([]PageRun, error) {
	return s.BoxRunsAppend(nil, b)
}

// BoxRunsAppend is BoxRuns appending to dst, so a serving loop can reuse
// one plan buffer across queries without allocating.
func (s *Store) BoxRunsAppend(dst []PageRun, b workload.Box) ([]PageRun, error) {
	if err := s.checkBox(b); err != nil {
		return dst, err
	}
	sc := boxScratchPool.Get().(*boxScratch)
	defer boxScratchPool.Put(sc)
	sc.ranks = s.layout.appendBoxRanks(sc.ranks[:0], b.Start, b.Dims, sc)
	return s.pager.RunsAppend(dst, sc.ranks)
}

// BufferPool is an LRU page cache with hit/miss accounting, used to measure
// how well a mapping's locality translates into cache hits under correlated
// access traces.
type BufferPool struct {
	capacity int
	entries  map[int]*lruNode
	head     *lruNode // most recently used
	tail     *lruNode // least recently used
	hits     int64
	misses   int64
}

type lruNode struct {
	page       int
	prev, next *lruNode
}

// NewBufferPool returns an LRU pool holding up to capacity pages.
func NewBufferPool(capacity int) (*BufferPool, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("storage: buffer pool capacity %d < 1", capacity)
	}
	return &BufferPool{capacity: capacity, entries: make(map[int]*lruNode, capacity)}, nil
}

// Access touches a page, returning true on a cache hit. Misses load the
// page, evicting the least recently used page when full.
func (b *BufferPool) Access(page int) bool {
	if n, ok := b.entries[page]; ok {
		b.hits++
		b.moveToFront(n)
		return true
	}
	b.misses++
	n := &lruNode{page: page}
	b.entries[page] = n
	b.pushFront(n)
	if len(b.entries) > b.capacity {
		evict := b.tail
		b.unlink(evict)
		delete(b.entries, evict.page)
	}
	return false
}

// Stats returns the accumulated hit and miss counts.
func (b *BufferPool) Stats() (hits, misses int64) { return b.hits, b.misses }

// Len returns the number of cached pages.
func (b *BufferPool) Len() int { return len(b.entries) }

// Reset clears the cache and counters.
func (b *BufferPool) Reset() {
	b.entries = make(map[int]*lruNode, b.capacity)
	b.head, b.tail = nil, nil
	b.hits, b.misses = 0, 0
}

func (b *BufferPool) pushFront(n *lruNode) {
	n.prev = nil
	n.next = b.head
	if b.head != nil {
		b.head.prev = n
	}
	b.head = n
	if b.tail == nil {
		b.tail = n
	}
}

func (b *BufferPool) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		b.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		b.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (b *BufferPool) moveToFront(n *lruNode) {
	if b.head == n {
		return
	}
	b.unlink(n)
	b.pushFront(n)
}
