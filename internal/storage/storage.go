// Package storage simulates the one-dimensional storage medium the paper's
// introduction motivates: records placed on fixed-size disk pages in the
// order a locality-preserving mapping assigns, an LRU buffer pool, and I/O
// accounting (pages touched, seeks, scan spans) for range queries. It turns
// the abstract "rank distance" the metrics package measures into concrete
// page-I/O differences between mappings.
package storage

import (
	"fmt"
	"sort"

	"github.com/spectral-lpm/spectrallpm/internal/order"
	"github.com/spectral-lpm/spectrallpm/internal/workload"
)

// Pager maps record ranks to fixed-size pages: the record at rank r lives
// on page r / RecordsPerPage.
type Pager struct {
	numRecords     int
	recordsPerPage int
	numPages       int
}

// NewPager returns a pager for numRecords records at recordsPerPage records
// per page.
func NewPager(numRecords, recordsPerPage int) (*Pager, error) {
	if numRecords < 0 {
		return nil, fmt.Errorf("storage: negative record count %d", numRecords)
	}
	if recordsPerPage < 1 {
		return nil, fmt.Errorf("storage: records per page %d < 1", recordsPerPage)
	}
	return &Pager{
		numRecords:     numRecords,
		recordsPerPage: recordsPerPage,
		numPages:       (numRecords + recordsPerPage - 1) / recordsPerPage,
	}, nil
}

// Page returns the page holding the record at the given rank.
func (p *Pager) Page(rank int) int {
	if rank < 0 || rank >= p.numRecords {
		panic(fmt.Sprintf("storage: rank %d outside [0,%d)", rank, p.numRecords))
	}
	return rank / p.recordsPerPage
}

// NumPages returns the number of pages.
func (p *Pager) NumPages() int { return p.numPages }

// RecordsPerPage returns the page capacity.
func (p *Pager) RecordsPerPage() int { return p.recordsPerPage }

// IOStats is the disk cost of answering one query.
type IOStats struct {
	// Pages is the number of distinct pages holding query results — the
	// selective (index-driven) read cost.
	Pages int
	// Seeks is the number of contiguous page runs; each run beyond the
	// first costs a random seek (Moon et al.'s cluster count at page
	// granularity).
	Seeks int
	// SpanPages is maxPage − minPage + 1 — the sequential-scan cost of
	// reading from the first to the last result page, the access pattern
	// the paper's Figure 6 measures (smaller span, shorter scan).
	SpanPages int
}

// QueryIO computes the I/O statistics for a query whose results live at the
// given ranks. An empty rank set costs nothing.
func (p *Pager) QueryIO(ranks []int) IOStats {
	if len(ranks) == 0 {
		return IOStats{}
	}
	pages := make([]int, len(ranks))
	for i, r := range ranks {
		pages[i] = p.Page(r)
	}
	sort.Ints(pages)
	distinct := pages[:1]
	for _, pg := range pages[1:] {
		if pg != distinct[len(distinct)-1] {
			distinct = append(distinct, pg)
		}
	}
	st := IOStats{Pages: len(distinct), Seeks: 1}
	for i := 1; i < len(distinct); i++ {
		if distinct[i] != distinct[i-1]+1 {
			st.Seeks++
		}
	}
	st.SpanPages = distinct[len(distinct)-1] - distinct[0] + 1
	return st
}

// Store couples a mapping with a pager so grid range queries can be costed
// directly.
type Store struct {
	mapping *order.Mapping
	pager   *Pager
}

// NewStore lays the mapping's grid points on pages in rank order.
func NewStore(m *order.Mapping, recordsPerPage int) (*Store, error) {
	p, err := NewPager(m.N(), recordsPerPage)
	if err != nil {
		return nil, err
	}
	return &Store{mapping: m, pager: p}, nil
}

// Mapping returns the underlying mapping.
func (s *Store) Mapping() *order.Mapping { return s.mapping }

// Pager returns the underlying pager.
func (s *Store) Pager() *Pager { return s.pager }

// BoxQueryIO returns the I/O cost of an axis-aligned box query.
func (s *Store) BoxQueryIO(b workload.Box) (IOStats, error) {
	g := s.mapping.Grid()
	for i, st := range b.Start {
		if st < 0 || st+b.Dims[i] > g.Dims()[i] {
			return IOStats{}, fmt.Errorf("storage: box %v exceeds grid", b)
		}
	}
	ids := workload.IDsInBox(g, b)
	ranks := make([]int, len(ids))
	for i, id := range ids {
		ranks[i] = s.mapping.Rank(id)
	}
	return s.pager.QueryIO(ranks), nil
}

// BufferPool is an LRU page cache with hit/miss accounting, used to measure
// how well a mapping's locality translates into cache hits under correlated
// access traces.
type BufferPool struct {
	capacity int
	entries  map[int]*lruNode
	head     *lruNode // most recently used
	tail     *lruNode // least recently used
	hits     int64
	misses   int64
}

type lruNode struct {
	page       int
	prev, next *lruNode
}

// NewBufferPool returns an LRU pool holding up to capacity pages.
func NewBufferPool(capacity int) (*BufferPool, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("storage: buffer pool capacity %d < 1", capacity)
	}
	return &BufferPool{capacity: capacity, entries: make(map[int]*lruNode, capacity)}, nil
}

// Access touches a page, returning true on a cache hit. Misses load the
// page, evicting the least recently used page when full.
func (b *BufferPool) Access(page int) bool {
	if n, ok := b.entries[page]; ok {
		b.hits++
		b.moveToFront(n)
		return true
	}
	b.misses++
	n := &lruNode{page: page}
	b.entries[page] = n
	b.pushFront(n)
	if len(b.entries) > b.capacity {
		evict := b.tail
		b.unlink(evict)
		delete(b.entries, evict.page)
	}
	return false
}

// Stats returns the accumulated hit and miss counts.
func (b *BufferPool) Stats() (hits, misses int64) { return b.hits, b.misses }

// Len returns the number of cached pages.
func (b *BufferPool) Len() int { return len(b.entries) }

// Reset clears the cache and counters.
func (b *BufferPool) Reset() {
	b.entries = make(map[int]*lruNode, b.capacity)
	b.head, b.tail = nil, nil
	b.hits, b.misses = 0, 0
}

func (b *BufferPool) pushFront(n *lruNode) {
	n.prev = nil
	n.next = b.head
	if b.head != nil {
		b.head.prev = n
	}
	b.head = n
	if b.tail == nil {
		b.tail = n
	}
}

func (b *BufferPool) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		b.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		b.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (b *BufferPool) moveToFront(n *lruNode) {
	if b.head == n {
		return
	}
	b.unlink(n)
	b.pushFront(n)
}
