package storage

import (
	"fmt"
	"math/bits"
	"runtime"
	"slices"
	"sync"

	"github.com/spectral-lpm/spectrallpm/internal/errs"
	"github.com/spectral-lpm/spectrallpm/internal/graph"
)

// Frame is the flat, position-independent serving state of one grid
// mapping: the rank array (by vertex id), its inverse (by rank), and the
// packed per-row rank|col layout the box engine consults. The slices may
// be owned (built in memory by NewStore) or borrowed from a read-only
// mapped byte region (the v2 codec's zero-copy open path) — the engines
// only ever read them, so the two cases serve identically and neither
// allocates in steady state.
type Frame struct {
	// Rank holds rank[vertex id] — the mapping's flat permutation.
	Rank []int
	// Vert holds vert[rank] — the inverse permutation the scan path
	// indexes directly.
	Vert []int
	// Rows holds one packed entry rank<<colBits|col per grid cell, each
	// grid row's entries sorted ascending — exactly BuildRows(grid, Rank).
	Rows []uint64
}

// RowColBits returns the number of low bits a packed row entry devotes to
// the column for a grid with the given row length — shared by the builder,
// the engine, and the codec's validation so the packing cannot drift.
func RowColBits(rowLen int) uint {
	return uint(bits.Len(uint(rowLen - 1)))
}

// BuildRows materializes the packed rank-ordered row layout for a rank
// permutation over the grid: one rank<<colBits|col entry per cell, each
// row's entries sorted ascending (ranks are unique, so sorting packed
// entries sorts by rank). These are the bytes the v2 codec persists, so a
// mapped open can borrow the layout instead of re-sorting every row.
func BuildRows(g *graph.Grid, rank []int) []uint64 {
	rowLen := g.RowLen()
	colBits := RowColBits(rowLen)
	rows := make([]uint64, g.Size())
	for id, r := range rank {
		rows[id] = uint64(r)<<colBits | uint64(id%rowLen)
	}
	for base := 0; base < len(rows); base += rowLen {
		slices.Sort(rows[base : base+rowLen])
	}
	return rows
}

// checkRowsParallelCutoff is the entry count below which CheckRows stays
// serial; goroutine fan-out only pays for itself on large mapped frames.
// A var so tests can lower it to drive the parallel path on small grids.
var checkRowsParallelCutoff = 1 << 17

// CheckRows verifies that rows is exactly BuildRows(g, rank) without
// materializing a reference copy: every row must hold rowLen strictly
// ascending entries whose columns stay in range and whose packed rank
// agrees with the rank array at the reconstructed cell. Strict ascent plus
// agreement pins the bytes completely — the borrowed layout of a mapped
// index cannot smuggle in a single out-of-place entry. The pass allocates
// nothing and reads each entry once; rows are independent, so large
// layouts split the grid rows across goroutines (the lowest failing row
// block reports, keeping errors deterministic).
func CheckRows(g *graph.Grid, rank []int, rows []uint64) error {
	rowLen := g.RowLen()
	if len(rows) != g.Size() {
		return fmt.Errorf("storage: row layout holds %d entries, grid has %d cells: %w", len(rows), g.Size(), errs.ErrCorruptIndex)
	}
	numRows := len(rows) / rowLen
	workers := runtime.GOMAXPROCS(0)
	if workers > numRows {
		workers = numRows
	}
	if workers <= 1 || len(rows) < checkRowsParallelCutoff {
		return checkRowsRange(g, rank, rows, 0, numRows)
	}
	errsByChunk := make([]error, workers)
	chunk := (numRows + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= numRows {
			break
		}
		hi := min(lo+chunk, numRows)
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			errsByChunk[w] = checkRowsRange(g, rank, rows, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errsByChunk {
		if err != nil {
			return err
		}
	}
	return nil
}

// checkRowsRange runs the CheckRows proof over grid rows [rowLo, rowHi).
func checkRowsRange(g *graph.Grid, rank []int, rows []uint64, rowLo, rowHi int) error {
	rowLen := g.RowLen()
	colBits := RowColBits(rowLen)
	colMask := uint64(1)<<colBits - 1
	for base := rowLo * rowLen; base < rowHi*rowLen; base += rowLen {
		prev := uint64(0)
		for i, e := range rows[base : base+rowLen] {
			if i > 0 && e <= prev {
				return fmt.Errorf("storage: row layout not strictly ascending at entry %d: %w", base+i, errs.ErrCorruptIndex)
			}
			prev = e
			col := e & colMask
			if col >= uint64(rowLen) {
				return fmt.Errorf("storage: row layout column %d outside row of %d: %w", col, rowLen, errs.ErrCorruptIndex)
			}
			id := base + int(col)
			if want := uint64(rank[id])<<colBits | col; e != want {
				return fmt.Errorf("storage: row layout disagrees with rank at cell %d: %w", id, errs.ErrCorruptIndex)
			}
		}
	}
	return nil
}
