// Package serve is the single serving core behind the public Index and
// ShardedIndex: the pooled, allocation-free bodies of Scan, ScanInto,
// Pages, PagesInto, QueryIO, and QueryBatch, parameterized by an Engine —
// the per-flavor frame provider (full grid, point set, or sharded
// composite) that knows how to validate a box, materialize its ascending
// ranks, and translate ranks back to coordinates. The public index types
// are thin wrappers over one Core each, so the serving semantics (box
// validation timing, the scan buffer-reuse contract, lazy rank-scratch
// acquisition, batch fan-out and first-bad-box error reporting) exist in
// exactly one place and cannot drift between the flavors — the property
// the coming daemon and coordinator/worker split program against.
package serve

import (
	"context"
	"fmt"
	"iter"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/spectral-lpm/spectrallpm/internal/errs"
	"github.com/spectral-lpm/spectrallpm/internal/storage"
	"github.com/spectral-lpm/spectrallpm/internal/workload"
)

// Engine is the frame-provider interface the core serves from. Every
// method must be safe for concurrent use and must not retain its slice
// arguments past the call.
type Engine interface {
	// CheckBox validates a box at request time, before any scratch is
	// acquired or work scheduled.
	CheckBox(b workload.Box) error
	// AppendBoxRanks appends the ascending ranks of the indexed points
	// inside the already-validated box [start, start+dims) to dst, using
	// sc for any scratch it needs, and returns the extended slice.
	AppendBoxRanks(dst []int, start, dims []int, sc *Scratch) []int
	// EmitCoords translates each rank to its point's coordinates (into the
	// reused coords buffer of len D()) and yields the pair, stopping early
	// when yield returns false. ranks come from AppendBoxRanks and ascend.
	EmitCoords(ranks []int, coords []int, yield func(rank int, coords []int) bool)
	// Pager is the global pager the page-plan and I/O-cost paths consult.
	Pager() *storage.Pager
	// D returns the coordinate dimensionality.
	D() int
	// Parallelism is the QueryBatch worker bound (<= 0 means GOMAXPROCS).
	Parallelism() int
}

// Core carries an engine through the shared serving bodies. The zero value
// is unusable; embed the result of NewCore.
type Core struct {
	eng Engine
	lc  *Lifecycle
}

// NewCore wraps an engine. The engine value is stored once — serving calls
// never re-box it, so interface conversion costs nothing per query. lc, when
// non-nil, reference-counts the engine's backing byte region: every serving
// body brackets its frame access with TryBorrow/EndBorrow so Close can wait
// for the last borrower before unmapping. A nil lc (built or materialized
// indexes, whose frames the garbage collector owns) skips the brackets.
func NewCore(e Engine, lc *Lifecycle) Core { return Core{eng: e, lc: lc} }

// Scratch is the pooled heavy workspace of one box query across every
// engine flavor: the rank buffer (which grows to the box's result volume),
// the rectangle and point-id scratch of the point-set R-tree probe, and
// the clip/concatenation scratch of the sharded planner. One pool serves
// all flavors — a sharded engine passes the same scratch down to its
// per-shard engines, whose fields are disjoint from the planner's. It is
// acquired only for the duration of the work that needs it — inside
// PagesInto/QueryIO, or inside a Scan sequence's single iteration — so an
// obtained-but-never-iterated Scan sequence can never strand scratch.
type Scratch struct {
	// Ctx is the request context of the current query, or nil for
	// uncancellable calls. Engines poll it at chunk boundaries (run merges,
	// slab gathers) and record the cancellation in Err rather than
	// returning partial results as if they were complete.
	Ctx context.Context
	// Err is the first cancellation (or other engine) error observed while
	// materializing ranks. When set, the rank buffer's contents are
	// unspecified and the serving body must discard them.
	Err error
	// Ranks is the query's materialized ascending rank set.
	Ranks []int
	// Pids, Min, Max back the point-set R-tree probe.
	Pids []int
	Min  []int
	Max  []int
	// CStart, CDims, Tmp, Ends, Streams back the sharded planner: the
	// per-shard clipped box, the concatenation buffer of per-shard global
	// rank segments, segment ends, and the stream views handed to the
	// merge.
	CStart  []int
	CDims   []int
	Tmp     []int
	Ends    []int
	Streams [][]int
}

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// GetScratch checks a scratch out of the shared pool.
//
//lpm:poolget — the canonical Get wrapper; callers owe a Release on every path.
func GetScratch() *Scratch {
	return scratchPool.Get().(*Scratch)
}

// Release empties the growable buffers and returns the scratch to the
// pool, keeping capacity for the next query.
//
//lpm:allocfree
func (sc *Scratch) Release() {
	sc.Ctx = nil
	sc.Err = nil
	sc.Ranks = sc.Ranks[:0]
	sc.Tmp = sc.Tmp[:0]
	scratchPool.Put(sc)
}

// scanState is the pooled lightweight shell of one in-flight Scan/ScanInto:
// the validated box copied into reusable buffers, the borrowed coordinate
// buffer the iteration yields, and a prebuilt iterator closure so a
// steady-state Scan performs zero heap allocations. The shell holds no rank
// scratch — that is acquired lazily from the scratch pool on first (and
// only) iteration, so abandoning an unconsumed sequence costs at most this
// few-words shell to the garbage collector, never a grown rank buffer.
type scanState struct {
	eng    Engine          // owning engine while a sequence is live; nil otherwise
	lc     *Lifecycle      // the core's lifecycle at arm time; nil skips borrow brackets
	ctx    context.Context // request context; nil for uncancellable scans
	start  []int           // box copy: callers may reuse their Box slices immediately
	dims   []int
	coords []int
	seq    iter.Seq2[int, []int]
}

var scanPool sync.Pool

// The pool's New is assigned in init because the iterator closure it builds
// refers back to scanPool (via release) — a package-level literal would be
// an initialization cycle.
func init() {
	scanPool.New = newScanState
}

func newScanState() any {
	s := &scanState{}
	s.seq = func(yield func(int, []int) bool) {
		// Errors (closed index, expired context) make the sequence yield
		// nothing; ScanIntoCtx calls run directly and surfaces them.
		s.run(yield)
	}
	return s
}

// run is the single iteration body behind both the Scan sequence and
// ScanInto: it borrows the frame, lazily checks the rank scratch out of the
// pool, materializes, and emits. Keeping one body means the sequence and the
// callback form cannot drift in their pooling or cancellation behavior.
//
//lpm:allocfree
func (s *scanState) run(yield func(int, []int) bool) error {
	eng := s.eng
	if eng == nil {
		// The sequence was already consumed (it is single-use); the
		// state may belong to another query by now.
		return nil
	}
	if lc := s.lc; lc != nil {
		if !lc.TryBorrow() {
			s.retire()
			return errs.ErrIndexClosed
		}
		defer lc.EndBorrow()
	}
	if ctx := s.ctx; ctx != nil {
		if err := ctx.Err(); err != nil {
			// Expired before any work: no scratch was touched.
			s.retire()
			return err
		}
	}
	// The box was validated by Scan, so materializing the ranks cannot
	// fail (only be cancelled); doing it here instead of in Scan means an
	// unconsumed sequence never checks rank scratch out of the pool.
	sc := GetScratch()
	sc.Ctx = s.ctx
	sc.Ranks = eng.AppendBoxRanks(sc.Ranks[:0], s.start, s.dims, sc)
	err := sc.Err
	defer s.release(sc)
	if err != nil {
		return err
	}
	eng.EmitCoords(sc.Ranks, s.coords, yield)
	return nil
}

// release retires a consumed sequence: the heavy scratch and the shell both
// return to their pools, and the shell is disarmed so a (forbidden) second
// iteration yields nothing instead of replaying stale ranks.
//
//lpm:ownsscratch — takes over the iteration's scratch and Releases it.
//lpm:allocfree
func (s *scanState) release(sc *Scratch) {
	sc.Release()
	s.retire()
}

// retire disarms the shell and returns it to its pool — the terminal step
// of every run path, with or without scratch in hand.
//
//lpm:allocfree
func (s *scanState) retire() {
	s.eng = nil
	s.lc = nil
	s.ctx = nil
	scanPool.Put(s)
}

// arm readies the shell for a d-dimensional query over the given box,
// copying the box so the caller's slices are free for reuse the moment Scan
// returns.
//
//lpm:allocfree — the makes below fire only while buffers grow to steady state.
func (s *scanState) arm(eng Engine, b workload.Box, d int) {
	if cap(s.start) < d {
		s.start = make([]int, d)
		s.dims = make([]int, d)
	}
	s.start, s.dims = s.start[:d], s.dims[:d]
	copy(s.start, b.Start)
	copy(s.dims, b.Dims)
	if cap(s.coords) < d {
		s.coords = make([]int, d)
	}
	s.coords = s.coords[:d]
	s.eng = eng
}

// Scan validates the box, arms a pooled shell, and returns its single-use
// sequence — see the public Index.Scan for the full buffer-reuse contract.
// A sequence whose index closes (or whose ctx expires) before it is
// iterated yields nothing; use ScanIntoCtx to observe the error.
//
//lpm:allocfree
func (c Core) Scan(b workload.Box) (iter.Seq2[int, []int], error) {
	return c.ScanCtx(nil, b)
}

// ScanCtx is Scan carrying a request context the iteration will poll at
// engine chunk boundaries. ctx may be nil.
//
//lpm:allocfree
func (c Core) ScanCtx(ctx context.Context, b workload.Box) (iter.Seq2[int, []int], error) {
	s, err := c.armedScan(ctx, b)
	if err != nil {
		return nil, err
	}
	return s.seq, nil
}

// armedScan validates the box and checks an armed shell out of the pool.
//
//lpm:allocfree
func (c Core) armedScan(ctx context.Context, b workload.Box) (*scanState, error) {
	if err := c.eng.CheckBox(b); err != nil {
		return nil, err
	}
	s := scanPool.Get().(*scanState)
	s.arm(c.eng, b, c.eng.D())
	s.lc = c.lc
	s.ctx = ctx
	return s, nil
}

// ScanInto is Scan in callback form, sharing its iteration body so the two
// cannot drift.
//
//lpm:allocfree
func (c Core) ScanInto(b workload.Box, yield func(rank int, coords []int) bool) error {
	return c.ScanIntoCtx(nil, b, yield)
}

// ScanIntoCtx is ScanInto under a request context: cancellation is polled
// before any pooled scratch is acquired and again at engine chunk
// boundaries, and a closed index or expired context is reported instead of
// silently yielding nothing. ctx may be nil.
//
//lpm:allocfree
func (c Core) ScanIntoCtx(ctx context.Context, b workload.Box, yield func(rank int, coords []int) bool) error {
	s, err := c.armedScan(ctx, b)
	if err != nil {
		return err
	}
	return s.run(yield)
}

// PagesInto appends the page-run plan of a box query to dst.
//
//lpm:allocfree
func (c Core) PagesInto(b workload.Box, dst []storage.PageRun) ([]storage.PageRun, error) {
	return c.PagesIntoCtx(nil, b, dst)
}

// PagesIntoCtx is PagesInto under a request context. An expired context is
// observed before any scratch is acquired (so a dead request costs no
// pooled memory traffic) and again at engine chunk boundaries mid-query.
//
//lpm:allocfree
func (c Core) PagesIntoCtx(ctx context.Context, b workload.Box, dst []storage.PageRun) ([]storage.PageRun, error) {
	if err := c.eng.CheckBox(b); err != nil {
		return dst, err
	}
	if lc := c.lc; lc != nil {
		if !lc.TryBorrow() {
			return dst, errs.ErrIndexClosed
		}
		defer lc.EndBorrow()
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return dst, err
		}
	}
	sc := GetScratch()
	defer sc.Release()
	sc.Ctx = ctx
	sc.Ranks = c.eng.AppendBoxRanks(sc.Ranks[:0], b.Start, b.Dims, sc)
	if sc.Err != nil {
		return dst, sc.Err
	}
	return c.eng.Pager().RunsAppend(dst, sc.Ranks)
}

// QueryIO returns the simulated I/O cost of a box query.
//
//lpm:allocfree
func (c Core) QueryIO(b workload.Box) (storage.IOStats, error) {
	return c.QueryIOCtx(nil, b)
}

// QueryIOCtx is QueryIO under a request context, with the same
// polling points as PagesIntoCtx.
//
//lpm:allocfree
func (c Core) QueryIOCtx(ctx context.Context, b workload.Box) (storage.IOStats, error) {
	if err := c.eng.CheckBox(b); err != nil {
		return storage.IOStats{}, err
	}
	if lc := c.lc; lc != nil {
		if !lc.TryBorrow() {
			return storage.IOStats{}, errs.ErrIndexClosed
		}
		defer lc.EndBorrow()
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return storage.IOStats{}, err
		}
	}
	sc := GetScratch()
	defer sc.Release()
	sc.Ctx = ctx
	sc.Ranks = c.eng.AppendBoxRanks(sc.Ranks[:0], b.Start, b.Dims, sc)
	if sc.Err != nil {
		return storage.IOStats{}, sc.Err
	}
	return c.eng.Pager().QueryIO(sc.Ranks)
}

// QueryBatch answers one QueryIO per box, fanning the slice across the
// engine's parallelism. Results are positional: stats[i] answers boxes[i].
// The first bad box (lowest index) reports its error and discards the
// batch, under both the serial and the parallel worker paths.
func (c Core) QueryBatch(boxes []workload.Box) ([]storage.IOStats, error) {
	return c.QueryBatchCtx(nil, boxes)
}

// QueryBatchCtx is QueryBatch under a request context: the context threads
// into every worker's QueryIOCtx, so one expired deadline stops the whole
// fan-out at the next chunk boundary of each in-flight box instead of
// burning a worker per remaining box.
//
//lpm:ctxaware — every box runs under QueryIOCtx, which polls per chunk
func (c Core) QueryBatchCtx(ctx context.Context, boxes []workload.Box) ([]storage.IOStats, error) {
	stats := make([]storage.IOStats, len(boxes))
	if len(boxes) == 0 {
		return stats, nil
	}
	workers := c.eng.Parallelism()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(boxes) {
		workers = len(boxes)
	}
	if workers == 1 {
		for i, b := range boxes {
			var err error
			if stats[i], err = c.QueryIOCtx(ctx, b); err != nil {
				return nil, fmt.Errorf("spectrallpm: box %d: %w", i, err)
			}
		}
		return stats, nil
	}
	boxErrs := make([]error, len(boxes))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(boxes) {
					return
				}
				stats[i], boxErrs[i] = c.QueryIOCtx(ctx, boxes[i])
			}
		}()
	}
	wg.Wait()
	//lpm:ctxok — post-join error scan: one comparison per box, first hit returns
	for i, err := range boxErrs {
		if err != nil {
			return nil, fmt.Errorf("spectrallpm: box %d: %w", i, err)
		}
	}
	return stats, nil
}
