package serve

import (
	"sync"
	"sync/atomic"
)

// Lifecycle reference-counts borrowed access to an index's backing byte
// region, so closing a mapped index can wait for the last borrower instead
// of trusting callers to quiesce first. Query bodies bracket every touch of
// potentially-mapped bytes with TryBorrow/EndBorrow; Close calls
// CloseAndWait, which latches the closing state (no new borrow succeeds)
// and blocks until the outstanding count drains to zero. Only then is it
// safe to unmap.
//
// The counter and the closing latch share one atomic word, so the borrow
// fast path is two uncontended atomic adds and closing never races a
// concurrent borrow: a borrow either lands before the latch (Close waits
// for it) or after (it fails with no access to the region).
type Lifecycle struct {
	// state holds the outstanding borrow count in the low bits and the
	// closing latch at closedBit. TryBorrow optimistically increments and
	// backs out if the latch is set, so the count briefly overshoots during
	// a racing close — EndBorrow's decrement keeps the accounting exact.
	state       atomic.Int64
	drainedOnce sync.Once
	drained     chan struct{}
}

// closedBit latches the closing state. It sits far above any plausible
// borrow count (2^62 concurrent borrows would exhaust memory first).
const closedBit = int64(1) << 62

// NewLifecycle returns an open lifecycle with no outstanding borrows.
func NewLifecycle() *Lifecycle {
	return &Lifecycle{drained: make(chan struct{})}
}

// TryBorrow registers a borrow of the backing region. It fails — without
// having granted any access — once CloseAndWait has begun. Every
// successful TryBorrow must be paired with exactly one EndBorrow.
//
//lpm:allocfree
func (l *Lifecycle) TryBorrow() bool {
	if l.state.Add(1)&closedBit == 0 {
		return true
	}
	l.endBorrow() // back out the optimistic increment
	return false
}

// EndBorrow releases a borrow granted by TryBorrow. The last release after
// CloseAndWait began unblocks the closer.
//
//lpm:allocfree
func (l *Lifecycle) EndBorrow() {
	l.endBorrow()
}

func (l *Lifecycle) endBorrow() {
	if l.state.Add(-1) == closedBit {
		// Closing and the count just hit zero: wake the closer. A failed
		// TryBorrow can land here too (its back-out may be the decrement
		// that reaches zero), so the signal must be idempotent.
		l.signalDrained()
	}
}

func (l *Lifecycle) signalDrained() {
	l.drainedOnce.Do(func() { close(l.drained) })
}

// Borrows returns the number of outstanding borrows — diagnostic only; the
// value is stale the moment it returns.
func (l *Lifecycle) Borrows() int64 {
	return l.state.Load() &^ closedBit
}

// Closing reports whether CloseAndWait has begun.
func (l *Lifecycle) Closing() bool {
	return l.state.Load()&closedBit != 0
}

// CloseAndWait latches the closing state and blocks until every
// outstanding borrow has released. It is idempotent and safe to call from
// any number of goroutines — all of them return only once the region is
// unreferenced.
func (l *Lifecycle) CloseAndWait() {
	for {
		v := l.state.Load()
		if v&closedBit != 0 {
			break // another closer latched; wait with it
		}
		if l.state.CompareAndSwap(v, v|closedBit) {
			if v == 0 {
				l.signalDrained() // nothing outstanding at the latch
			}
			break
		}
	}
	<-l.drained
}
