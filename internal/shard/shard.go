// Package shard plans the decomposition of a grid or point set into shards
// — the paper's declustering application (partitioning spatial data across
// disks via the Fiedler vector's median cut) turned into a sharding policy
// for parallel build and parallel serving.
//
// For the paper's default construction — the orthogonal, unit-weight grid
// graph — the Fiedler vector has a closed form: the Laplacian eigenvalues of
// a grid are sums of path-graph eigenvalues, so λ₂ = 2(1 − cos(π/n_a)) where
// n_a is the longest side, and its eigenvector is the first cosine harmonic
// along that axis, constant across all other axes. The spectral median cut
// of a grid is therefore exactly the half-split of its longest axis — no
// eigensolve needed. GridPlan applies that cut recursively (proportionally
// for k not a power of two, the same proportional rule internal/partition's
// KWay uses on the spectral order), yielding k axis-aligned cells in
// bisection-tree order: consecutive cells are spatially adjacent, so
// assigning shard i the global rank block before shard i+1 preserves
// locality across shard boundaries.
//
// Arbitrary point sets have no closed form; they shard through
// partition.KWayOrdered, which runs the true spectral median cut
// recursively on the point graph.
package shard

import (
	"fmt"

	"github.com/spectral-lpm/spectrallpm/internal/graph"
)

// Cell is one shard of a grid plan: the axis-aligned sub-grid
// [Origin, Origin+Dims) of the global grid.
type Cell struct {
	Origin []int
	Dims   []int
}

// Volume returns the number of grid points in the cell.
func (c Cell) Volume() int {
	v := 1
	for _, d := range c.Dims {
		v *= d
	}
	return v
}

// GridPlan splits a grid with the given side lengths into k axis-aligned
// cells by recursive proportional median cuts of the longest axis — the
// closed-form spectral bisection of the paper's grid graph (see the package
// comment). Cells are returned in bisection-tree order; every cell has at
// least one point, cells are pairwise disjoint, and together they tile the
// grid exactly. k must lie in [1, product(dims)].
func GridPlan(dims []int, k int) ([]Cell, error) {
	g, err := graph.NewGrid(dims...)
	if err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("shard: k = %d < 1", k)
	}
	if k > g.Size() {
		return nil, fmt.Errorf("shard: k = %d exceeds %d grid points", k, g.Size())
	}
	cells := make([]Cell, 0, k)
	var rec func(origin, dims []int, k int)
	rec = func(origin, dims []int, k int) {
		if k == 1 {
			cells = append(cells, Cell{
				Origin: append([]int(nil), origin...),
				Dims:   append([]int(nil), dims...),
			})
			return
		}
		// Cut the longest axis (ties to the lowest axis, matching the
		// deterministic tie-break of the spectral order itself) at the
		// position proportional to the child part counts, rounded to a
		// whole layer so both children stay axis-aligned boxes.
		axis := 0
		for a := 1; a < len(dims); a++ {
			if dims[a] > dims[axis] {
				axis = a
			}
		}
		kLeft := k / 2
		cut := (dims[axis]*kLeft + k/2) / k // round(dims[axis] * kLeft / k)
		if cut < 1 {
			cut = 1
		}
		if cut > dims[axis]-1 {
			cut = dims[axis] - 1
		}
		// Layer volume of the cut axis: points per unit of axis length.
		layer := 1
		for a, d := range dims {
			if a != axis {
				layer *= d
			}
		}
		leftVol, rightVol := layer*cut, layer*(dims[axis]-cut)
		// Re-balance the child part counts against the achievable volumes:
		// each child must receive at least one part and no more parts than
		// points. The interval is never empty because k <= leftVol+rightVol.
		if kLeft < k-rightVol {
			kLeft = k - rightVol
		}
		if kLeft > leftVol {
			kLeft = leftVol
		}
		if kLeft < 1 {
			kLeft = 1
		}
		if kLeft > k-1 {
			kLeft = k - 1
		}
		left := append([]int(nil), dims...)
		left[axis] = cut
		right := append([]int(nil), dims...)
		right[axis] = dims[axis] - cut
		rightOrigin := append([]int(nil), origin...)
		rightOrigin[axis] += cut
		rec(origin, left, kLeft)
		rec(rightOrigin, right, k-kLeft)
	}
	rec(make([]int, len(dims)), append([]int(nil), dims...), k)
	return cells, nil
}

// ClipBox intersects the half-open box [start, start+dims) with the
// inclusive bounding box [lo, hi], writing the intersection into
// outStart/outDims (each of length d, allocation-free). It returns false —
// leaving the outputs unspecified — when the intersection is empty, which
// includes any query side < 1. All inputs must share arity d.
func ClipBox(start, dims, lo, hi, outStart, outDims []int) bool {
	for i := range start {
		s, e := start[i], start[i]+dims[i] // half-open [s, e)
		if s < lo[i] {
			s = lo[i]
		}
		if e > hi[i]+1 {
			e = hi[i] + 1
		}
		if e <= s {
			return false
		}
		outStart[i] = s
		outDims[i] = e - s
	}
	return true
}
