package shard

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/spectral-lpm/spectrallpm/internal/graph"
)

// TestGridPlanTiles checks the defining property of a plan: k non-empty,
// pairwise-disjoint axis-aligned cells that cover every grid point exactly
// once, for many random grids and shard counts.
func TestGridPlanTiles(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		d := 1 + rng.Intn(3)
		dims := make([]int, d)
		size := 1
		for i := range dims {
			dims[i] = 1 + rng.Intn(9)
			size *= dims[i]
		}
		k := 1 + rng.Intn(size)
		cells, err := GridPlan(dims, k)
		if err != nil {
			t.Fatalf("dims %v k %d: %v", dims, k, err)
		}
		if len(cells) != k {
			t.Fatalf("dims %v k %d: got %d cells", dims, k, len(cells))
		}
		g := graph.MustGrid(dims...)
		covered := make([]int, g.Size())
		for ci, c := range cells {
			if c.Volume() < 1 {
				t.Fatalf("dims %v k %d: empty cell %d", dims, k, ci)
			}
			coords := append([]int(nil), c.Origin...)
			for {
				covered[g.ID(coords)]++
				i := d - 1
				for ; i >= 0; i-- {
					coords[i]++
					if coords[i] < c.Origin[i]+c.Dims[i] {
						break
					}
					coords[i] = c.Origin[i]
				}
				if i < 0 {
					break
				}
			}
		}
		for id, n := range covered {
			if n != 1 {
				t.Fatalf("dims %v k %d: point %d covered %d times", dims, k, id, n)
			}
		}
	}
}

// TestGridPlanBalance checks near-equal cell volumes: the proportional cut
// with whole-layer rounding keeps the largest cell within a layer of the
// ideal share whenever the grid divides evenly, and never degenerates in
// general (every cell gets at least one point, checked above; here the max
// stays within 2x of ideal for even splits of even grids).
func TestGridPlanBalance(t *testing.T) {
	for _, tc := range []struct {
		dims []int
		k    int
	}{
		{[]int{512, 512}, 16},
		{[]int{64, 64}, 4},
		{[]int{64, 64}, 8},
		{[]int{32, 32, 32}, 8},
		{[]int{100, 10}, 5},
	} {
		cells, err := GridPlan(tc.dims, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		size := 1
		for _, s := range tc.dims {
			size *= s
		}
		ideal := size / tc.k
		for _, c := range cells {
			if v := c.Volume(); v != ideal {
				t.Errorf("dims %v k %d: cell volume %d, ideal %d", tc.dims, tc.k, v, ideal)
			}
		}
	}
}

// TestGridPlanTreeOrder pins the bisection-tree order: the top-level cut
// splits the longest axis, and every cell of the left half-space precedes
// every cell of the right half-space in the returned slice — the coarse
// spectral order that makes block rank assignment across shards
// locality-preserving. It also pins determinism (two calls, equal plans).
func TestGridPlanTreeOrder(t *testing.T) {
	cells, err := GridPlan([]int{16, 16}, 7)
	if err != nil {
		t.Fatal(err)
	}
	// k=7: kLeft=3 of 7, cut = round(16*3/7) = 7 on axis 0.
	const cut = 7
	sawRight := false
	for i, c := range cells {
		left := c.Origin[0]+c.Dims[0] <= cut
		right := c.Origin[0] >= cut
		if !left && !right {
			t.Fatalf("cell %d straddles the top-level cut: %+v", i, c)
		}
		if right {
			sawRight = true
		}
		if left && sawRight {
			t.Fatalf("cell %d from the left half-space appears after right-half cells", i)
		}
	}
	again, err := GridPlan([]int{16, 16}, 7)
	if err != nil || !reflect.DeepEqual(cells, again) {
		t.Fatalf("plan is not deterministic: %v", err)
	}
}

func TestGridPlanSingleAndErrors(t *testing.T) {
	cells, err := GridPlan([]int{5, 3}, 1)
	if err != nil || len(cells) != 1 {
		t.Fatalf("k=1: %v %v", cells, err)
	}
	if !reflect.DeepEqual(cells[0], Cell{Origin: []int{0, 0}, Dims: []int{5, 3}}) {
		t.Fatalf("k=1 cell %+v", cells[0])
	}
	if _, err := GridPlan([]int{2, 2}, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := GridPlan([]int{2, 2}, 5); err == nil {
		t.Error("k>size accepted")
	}
	if _, err := GridPlan([]int{0, 2}, 1); err == nil {
		t.Error("bad dims accepted")
	}
	// k == size degenerates to single-point cells.
	cells, err = GridPlan([]int{2, 3}, 6)
	if err != nil || len(cells) != 6 {
		t.Fatalf("k=size: %d cells, %v", len(cells), err)
	}
}

func TestClipBox(t *testing.T) {
	out1, out2 := make([]int, 2), make([]int, 2)
	// Full overlap, partial overlap, disjoint, empty query.
	if !ClipBox([]int{1, 1}, []int{4, 4}, []int{0, 0}, []int{9, 9}, out1, out2) {
		t.Fatal("contained box clipped away")
	}
	if !reflect.DeepEqual(out1, []int{1, 1}) || !reflect.DeepEqual(out2, []int{4, 4}) {
		t.Fatalf("contained clip %v %v", out1, out2)
	}
	if !ClipBox([]int{-3, 2}, []int{10, 10}, []int{0, 0}, []int{4, 4}, out1, out2) {
		t.Fatal("overlapping box clipped away")
	}
	if !reflect.DeepEqual(out1, []int{0, 2}) || !reflect.DeepEqual(out2, []int{5, 3}) {
		t.Fatalf("partial clip %v %v", out1, out2)
	}
	if ClipBox([]int{8, 8}, []int{2, 2}, []int{0, 0}, []int{4, 4}, out1, out2) {
		t.Fatal("disjoint box not clipped away")
	}
	if ClipBox([]int{1, 1}, []int{0, 3}, []int{0, 0}, []int{4, 4}, out1, out2) {
		t.Fatal("empty box not clipped away")
	}
}

// TestClipBoxDegenerate pins the edge shapes the cluster router's
// fan-out planner depends on: a query outside every shard, a query
// ending exactly at a shard boundary, and 1-cell boxes on both sides of
// the inclusive upper bound.
func TestClipBoxDegenerate(t *testing.T) {
	out1, out2 := make([]int, 2), make([]int, 2)

	// A box entirely outside the shard in every axis direction.
	for _, start := range [][]int{{-5, -5}, {-5, 2}, {10, 2}, {2, 10}, {10, 10}} {
		if ClipBox(start, []int{2, 2}, []int{0, 0}, []int{4, 4}, out1, out2) {
			t.Errorf("box at %v outside shard not clipped away", start)
		}
	}

	// Half-open box ending EXACTLY at the shard's inclusive lower bound:
	// [0, 3) vs bounds [3, 6] shares no cell.
	if ClipBox([]int{0, 0}, []int{3, 3}, []int{3, 3}, []int{6, 6}, out1, out2) {
		t.Error("box ending at shard lower bound not clipped away")
	}
	// One cell further and they share exactly the corner cell (3,3).
	if !ClipBox([]int{0, 0}, []int{4, 4}, []int{3, 3}, []int{6, 6}, out1, out2) {
		t.Fatal("corner-touching box clipped away")
	}
	if !reflect.DeepEqual(out1, []int{3, 3}) || !reflect.DeepEqual(out2, []int{1, 1}) {
		t.Fatalf("corner clip %v %v, want [3 3] [1 1]", out1, out2)
	}

	// Box starting exactly at the inclusive upper bound: the bound cell
	// itself is still inside.
	if !ClipBox([]int{6, 6}, []int{5, 5}, []int{3, 3}, []int{6, 6}, out1, out2) {
		t.Fatal("box starting at upper bound clipped away")
	}
	if !reflect.DeepEqual(out1, []int{6, 6}) || !reflect.DeepEqual(out2, []int{1, 1}) {
		t.Fatalf("upper-bound clip %v %v, want [6 6] [1 1]", out1, out2)
	}
	// Starting one past the inclusive upper bound: nothing.
	if ClipBox([]int{7, 7}, []int{5, 5}, []int{3, 3}, []int{6, 6}, out1, out2) {
		t.Error("box past upper bound not clipped away")
	}

	// 1-cell query boxes: inside survives unchanged, outside vanishes.
	if !ClipBox([]int{4, 4}, []int{1, 1}, []int{3, 3}, []int{6, 6}, out1, out2) {
		t.Fatal("1-cell box inside shard clipped away")
	}
	if !reflect.DeepEqual(out1, []int{4, 4}) || !reflect.DeepEqual(out2, []int{1, 1}) {
		t.Fatalf("1-cell clip %v %v", out1, out2)
	}
	if ClipBox([]int{2, 4}, []int{1, 1}, []int{3, 3}, []int{6, 6}, out1, out2) {
		t.Error("1-cell box outside shard not clipped away")
	}

	// A 1-cell shard (lo == hi) intersected by a big box clips to itself.
	if !ClipBox([]int{0, 0}, []int{10, 10}, []int{5, 5}, []int{5, 5}, out1, out2) {
		t.Fatal("big box over 1-cell shard clipped away")
	}
	if !reflect.DeepEqual(out1, []int{5, 5}) || !reflect.DeepEqual(out2, []int{1, 1}) {
		t.Fatalf("1-cell shard clip %v %v", out1, out2)
	}
}
