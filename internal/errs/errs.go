// Package errs holds the sentinel errors shared by the internal packages
// and re-exported by the root package. Internal packages cannot import the
// root package (it imports them), so the sentinels live here; callers are
// expected to match them with errors.Is against the root package's
// re-exports (spectrallpm.ErrUnknownMapping and friends).
package errs

import "errors"

var (
	// ErrUnknownMapping reports a mapping name outside the supported
	// families ("spectral", "hilbert", "gray", "morton", "peano", "sweep",
	// "snake", "diagonal", "spiral").
	ErrUnknownMapping = errors.New("unknown mapping")

	// ErrNotPermutation reports a rank slice that is not a permutation of
	// 0..N-1 (a duplicate, a hole, or an out-of-range value).
	ErrNotPermutation = errors.New("rank slice is not a permutation")

	// ErrDimensionMismatch reports coordinates, boxes, or rank slices whose
	// arity or extent does not fit the grid they are used with.
	ErrDimensionMismatch = errors.New("dimension mismatch")

	// ErrRankOutOfRange reports a 1-D rank outside [0, N) — a malformed
	// query against a pager or index that must not crash a server.
	ErrRankOutOfRange = errors.New("rank out of range")

	// ErrCorruptIndex reports a serialized index whose framing decodes but
	// whose contents are inconsistent or hostile: a non-positive page size,
	// impossible λ₂ entries, shard frames that do not tile the declared
	// grid, overlapping or mismatched shard metadata. Servers loading
	// untrusted files should treat it as a permanent (non-retryable) load
	// failure.
	ErrCorruptIndex = errors.New("corrupt index file")

	// ErrIndexClosed reports a query against a mapped index whose Close has
	// begun: the backing byte region is being (or has been) unmapped, so no
	// new borrow may start. A server that swapped in a replacement index
	// should treat it as a retry-with-current-index signal, never as a
	// request error.
	ErrIndexClosed = errors.New("index closed")
)
