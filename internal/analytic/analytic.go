// Package analytic computes the spectral order of the paper's default
// construction — the orthogonal, unit-weight grid graph — in closed form,
// with zero eigensolves.
//
// The Laplacian of an m₁×…×m_d grid is the Kronecker sum of path-graph
// Laplacians, so its eigenpairs are tensor products of the path eigenpairs:
// every eigenvalue is a sum Σ_a 2(1−cos(π k_a/m_a)) and its eigenvector is
// the product of path cosines cos(π k_a (i_a+½)/m_a). The second-smallest
// eigenvalue takes k = (0,…,0) except a single 1 on a longest axis:
//
//	λ₂ = 2(1 − cos(π/M)),   M = max side,
//
// and its eigenspace is spanned by the first cosine harmonic along each
// axis of length M — one vector per longest axis, constant across all other
// axes. GridOrder materializes that eigenspace directly:
//
//   - A unique longest axis gives a simple λ₂; the Fiedler vector is the
//     single harmonic.
//   - Tied longest axes give a degenerate eigenspace with a fully analytic
//     basis; the DegeneracyBalanced quartic mixing runs over that basis
//     through the same basis-independent engine (core.MixBalanced) the
//     eigensolver path uses — no EigenspaceProbe, no solve. The quartic
//     objective itself collapses to the closed form Σ_a c_a⁴·S with one
//     O(M) coefficient, so each descent step is O(k).
//   - Ordering runs through core.OrderByValues (the same snapping,
//     orientation, and recursive tie-breaking as the solver path). Tie
//     groups are resolved analytically: a group is a union of constant-
//     value slabs whose connected components are sub-grids, so the paper's
//     recursive tie-breaking recurses into GridOrder again — the recursion
//     never solves an eigenproblem at any level.
//
// The result is pinned rank-for-rank to the eigensolver path wherever the
// solver resolves the spectrum faithfully: both paths share the ordering
// pipeline and the mixing engine, so they can only diverge where solver
// error exceeds the snapping tolerance or where genuinely distinct
// eigenvalues fall inside the solver's degeneracy tolerance (axes of
// length ≳10⁵, far beyond buildable grids).
package analytic

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/spectral-lpm/spectrallpm/internal/core"
	"github.com/spectral-lpm/spectrallpm/internal/eigen"
	"github.com/spectral-lpm/spectrallpm/internal/graph"
)

// maxMixAxes mirrors the eigensolver path's probed-multiplicity cap (core's
// maxProbedMultiplicity): the solver mixes at most 8 eigenspace members, so
// a grid with more than 8 tied longest axes falls back to the solver rather
// than mix a larger basis than the solver would.
const maxMixAxes = 8

// errNoClosedForm reports a grid outside the closed-form engine's reach
// (more tied longest axes than the solver-mirroring mixing cap). Callers
// fall back to the eigensolver.
var errNoClosedForm = errors.New("analytic: tie structure has no closed form")

// Result is the closed-form spectral order of a default grid.
type Result struct {
	// Order[r] is the vertex placed at rank r; Rank is its inverse.
	Order []int
	Rank  []int
	// Fiedler is the analytic Fiedler assignment (the degenerate-balanced
	// mix on square-ish grids), oriented so the order ascends with it.
	Fiedler []float64
	// Lambda2 is the closed-form algebraic connectivity 2(1 − cos(π/M)).
	Lambda2 float64
}

// Applicable reports whether GridOrder covers the grid: at most maxMixAxes
// axes tie for the longest side. (Every other default grid is covered; a
// failure inside GridOrder's tie resolution is still possible in principle
// and surfaces as an error there.)
func Applicable(g *graph.Grid) bool {
	dims := g.Dims()
	m := 0
	for _, s := range dims {
		if s > m {
			m = s
		}
	}
	if m < 2 {
		return true // single vertex
	}
	tied := 0
	for _, s := range dims {
		if s == m {
			tied++
		}
	}
	return tied <= maxMixAxes
}

// GridOrder computes the spectral order of the orthogonal unit-weight graph
// of g analytically, in O(N log N) time and zero eigensolves. seed drives
// the deterministic degenerate mixing exactly as it does on the solver
// path. An error (errNoClosedForm wrapped, or a tied-axis count beyond
// maxMixAxes) means the caller should run the eigensolver instead.
func GridOrder(g *graph.Grid, seed int64) (*Result, error) {
	n := g.Size()
	if n == 1 {
		return &Result{Order: []int{0}, Rank: []int{0}, Fiedler: []float64{0}, Lambda2: 0}, nil
	}
	e, err := newEngine(g, seed)
	if err != nil {
		return nil, err
	}
	x := e.fiedler()
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	ordered, flipped, err := core.OrderByValues(ids, x, e.resolveGroup)
	if err != nil {
		return nil, err
	}
	if flipped {
		for i := range x {
			x[i] = -x[i]
		}
	}
	rank := make([]int, n)
	for r, v := range ordered {
		rank[v] = r
	}
	return &Result{
		Order:   ordered,
		Rank:    rank,
		Fiedler: x,
		Lambda2: 2 * (1 - math.Cos(math.Pi/float64(e.m))),
	}, nil
}

// engine holds the analytic structure of one grid: tied axes, cosine
// tables, strides, and the memoized slab recursion.
type engine struct {
	g      *graph.Grid
	dims   []int
	stride []int
	axesT  []int // axes tied for the longest side M
	nonT   []int // the remaining axes
	m      int   // M, the longest side
	seed   int64
	cosT   []float64 // cos(π(i+½)/M), i = 0..M−1
	gamma  float64   // per-harmonic normalization √(2/N)

	// slabOffsets[r] is the id offset (relative to a slab's base id) of the
	// slab vertex at slab rank r — the recursive spectral order of the
	// non-tied sub-grid, computed once and reused by every slab.
	slabOffsets []int
}

func newEngine(g *graph.Grid, seed int64) (*engine, error) {
	dims := g.Dims()
	d := len(dims)
	e := &engine{g: g, dims: dims, seed: seed}
	e.stride = make([]int, d)
	s := 1
	for i := d - 1; i >= 0; i-- {
		e.stride[i] = s
		s *= dims[i]
	}
	for _, side := range dims {
		if side > e.m {
			e.m = side
		}
	}
	for a, side := range dims {
		if side == e.m {
			e.axesT = append(e.axesT, a)
		} else {
			e.nonT = append(e.nonT, a)
		}
	}
	if len(e.axesT) > maxMixAxes {
		return nil, fmt.Errorf("analytic: %d tied longest axes exceed the %d-member mixing cap: %w",
			len(e.axesT), maxMixAxes, errNoClosedForm)
	}
	e.cosT = make([]float64, e.m)
	for i := range e.cosT {
		e.cosT[i] = math.Cos(math.Pi * (float64(i) + 0.5) / float64(e.m))
	}
	e.gamma = math.Sqrt(2 / float64(g.Size()))
	return e, nil
}

// fiedler returns the analytic Fiedler assignment: the single harmonic on a
// unique longest axis, or the balanced mix of the tied-axis harmonics.
func (e *engine) fiedler() []float64 {
	if len(e.axesT) == 1 {
		x := make([]float64, e.g.Size())
		e.addHarmonic(x, e.axesT[0], e.gamma)
		return x
	}
	return core.MixBalanced(&mixSpace{e: e}, e.seed)
}

// addHarmonic accumulates x[v] += scale·cos(π(coord_axis(v)+½)/M) without
// materializing coordinates: ids are row-major, so the axis coordinate is
// (id / stride) mod side.
func (e *engine) addHarmonic(x []float64, axis int, scale float64) {
	st, side := e.stride[axis], e.dims[axis]
	for id := range x {
		x[id] += scale * e.cosT[(id/st)%side]
	}
}

// mixSpace presents the tied-axis eigenspace to core.MixBalanced. The basis
// vectors b_a(v) = γ·cos(π(coord_a(v)+½)/M) are exactly orthonormal, and
// because b_a differs across an edge only when the edge runs along axis a,
// the quartic edge objective collapses to f(c) = S·Σ_a c_a⁴ with a single
// shared coefficient S (tied axes have identical harmonics).
type mixSpace struct {
	e *engine
	s float64 // lazily computed quartic coefficient
}

func (sp *mixSpace) Ambient() int { return sp.e.g.Size() }
func (sp *mixSpace) Dim() int     { return len(sp.e.axesT) }

func (sp *mixSpace) Project(r []float64, c []float64) {
	e := sp.e
	for j, axis := range e.axesT {
		st, side := e.stride[axis], e.dims[axis]
		var dot float64
		for id, rv := range r {
			dot += rv * e.cosT[(id/st)%side]
		}
		c[j] = e.gamma * dot
	}
}

func (sp *mixSpace) coef() float64 {
	if sp.s == 0 {
		e := sp.e
		var sum float64
		for i := 0; i+1 < e.m; i++ {
			d := e.cosT[i+1] - e.cosT[i]
			sum += d * d * d * d
		}
		g4 := e.gamma * e.gamma * e.gamma * e.gamma
		sp.s = g4 * float64(e.g.Size()/e.m) * sum
	}
	return sp.s
}

func (sp *mixSpace) Objective(c []float64) float64 {
	var f float64
	for _, cj := range c {
		sq := cj * cj
		f += sq * sq
	}
	return sp.coef() * f
}

func (sp *mixSpace) Gradient(c []float64, out []float64) {
	s := sp.coef()
	for j, cj := range c {
		out[j] = 4 * s * cj * cj * cj
	}
}

func (sp *mixSpace) Assemble(c []float64) []float64 {
	e := sp.e
	x := make([]float64, e.g.Size())
	for j, axis := range e.axesT {
		e.addHarmonic(x, axis, e.gamma*c[j])
	}
	return x
}

// resolveGroup is the analytic form of the paper's recursive tie-breaking.
// The Fiedler assignment depends only on the tied-axis coordinates, so a
// tie group is a union of SLABS — for each tied-coordinate tuple in the
// group, the full sub-grid over the non-tied axes. Slabs whose tuples
// differ in one tied coordinate by one are adjacent; connected components
// of that slab graph are ordered by smallest vertex id (exactly what the
// solver path's component split does) and each component recurses:
//
//   - a single slab is the non-tied sub-grid → recursive GridOrder,
//     computed once and reused by every slab (slabs are congruent);
//   - several adjacent slabs forming an axis-aligned box in tied-coordinate
//     space are that box's sub-grid → recursive GridOrder on strictly
//     fewer vertices;
//   - any other shape (bands merged by snapping — axes ≳1000 long) is
//     ordered by a true spectral solve of just that component's induced
//     subgraph, the same recursion step the solver path runs, bounded by
//     the component size rather than the grid.
func (e *engine) resolveGroup(group []int) ([]int, error) {
	if len(e.nonT) == 0 && len(group) == 2 && e.manhattan(group[0], group[1]) > 1 {
		// The square-grid common case — a symmetric pair like {(i,j),(j,i)},
		// always non-adjacent: two singleton slabs, components in id order.
		// Skipping the slab machinery here saves one map per pair on grids
		// with hundreds of thousands of pairs.
		return group, nil
	}
	nonTVol := nonTVolume(e)
	// Slab decomposition: key = Σ_{a∈T} coord_a·stride_a (the slab's base
	// id, since the slab holds the full all-zeros non-tied corner).
	keyAt := make(map[int]int) // slab key -> count of group members seen
	var keys []int
	for _, id := range group {
		key := 0
		for _, a := range e.axesT {
			key += ((id / e.stride[a]) % e.dims[a]) * e.stride[a]
		}
		if _, ok := keyAt[key]; !ok {
			keys = append(keys, key)
		}
		keyAt[key]++
	}
	sort.Ints(keys)
	for _, k := range keys {
		if keyAt[k] != nonTVol {
			// A partial slab would mean exactly-equal values were split
			// across groups, which snapping cannot do; defensive only.
			return nil, fmt.Errorf("analytic: partial slab in tie group: %w", errNoClosedForm)
		}
	}
	comps := e.slabComponents(keys)
	out := make([]int, 0, len(group))
	for _, comp := range comps {
		var err error
		if out, err = e.appendComponent(out, comp); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// slabComponents groups slab keys into connected components (adjacency:
// tied-coordinate tuples differing by one grid step) and returns them
// sorted by smallest key, each component's keys ascending.
func (e *engine) slabComponents(keys []int) [][]int {
	in := make(map[int]bool, len(keys))
	for _, k := range keys {
		in[k] = true
	}
	seen := make(map[int]bool, len(keys))
	var comps [][]int
	for _, start := range keys { // ascending → components sorted by min key
		if seen[start] {
			continue
		}
		comp := []int{start}
		seen[start] = true
		for i := 0; i < len(comp); i++ {
			k := comp[i]
			for _, a := range e.axesT {
				c := (k / e.stride[a]) % e.dims[a]
				if c > 0 {
					if nb := k - e.stride[a]; in[nb] && !seen[nb] {
						seen[nb] = true
						comp = append(comp, nb)
					}
				}
				if c+1 < e.dims[a] {
					if nb := k + e.stride[a]; in[nb] && !seen[nb] {
						seen[nb] = true
						comp = append(comp, nb)
					}
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// appendComponent emits one slab component in its recursive spectral order.
func (e *engine) appendComponent(out []int, comp []int) ([]int, error) {
	if len(comp) == 1 {
		offsets, err := e.slabRanks()
		if err != nil {
			return nil, err
		}
		base := comp[0]
		for _, off := range offsets {
			out = append(out, base+off)
		}
		return out, nil
	}
	// Several adjacent slabs: they must tile an axis-aligned box in
	// tied-coordinate space for the induced subgraph to be a grid.
	d := len(e.dims)
	lo := make([]int, d)
	hi := make([]int, d)
	for i := range lo {
		lo[i] = int(^uint(0) >> 1)
	}
	for _, k := range comp {
		for _, a := range e.axesT {
			c := (k / e.stride[a]) % e.dims[a]
			if c < lo[a] {
				lo[a] = c
			}
			if c > hi[a] {
				hi[a] = c
			}
		}
	}
	vol := 1
	subDims := make([]int, d)
	base := 0
	for i := range e.dims {
		subDims[i] = e.dims[i]
	}
	for _, a := range e.axesT {
		subDims[a] = hi[a] - lo[a] + 1
		vol *= subDims[a]
		base += lo[a] * e.stride[a]
	}
	if vol != len(comp) {
		// The component is not an axis-aligned box (adjacent slabs merged by
		// snapping into a band — axes of length ≳1000). Order its members
		// exactly the way the solver path's recursion would: a spectral
		// solve of the induced subgraph, bounded by the component size,
		// which is a vanishing fraction of the grid.
		members := make([]int, 0, len(comp)*nonTVolume(e))
		for _, k := range comp {
			members = e.appendSlabMembers(members, k)
		}
		sort.Ints(members)
		return e.solveSubgraph(out, members)
	}
	subGrid, err := graph.NewGrid(subDims...)
	if err != nil {
		return nil, err
	}
	// Strictly smaller than the enclosing grid: the component is a strict
	// subset of a tie group, itself a strict subset of the grid.
	sub, err := GridOrder(subGrid, e.seed)
	if err != nil {
		return nil, err
	}
	coords := make([]int, d)
	for _, v := range sub.Order {
		subGrid.Coords(v, coords)
		id := base
		for i, c := range coords {
			id += c * e.stride[i]
		}
		out = append(out, id)
	}
	return out, nil
}

// manhattan returns the grid Manhattan distance between two vertex ids.
func (e *engine) manhattan(a, b int) int {
	var dist int
	for axis, side := range e.dims {
		st := e.stride[axis]
		d := (a/st)%side - (b/st)%side
		if d < 0 {
			d = -d
		}
		dist += d
	}
	return dist
}

func nonTVolume(e *engine) int {
	v := 1
	for _, b := range e.nonT {
		v *= e.dims[b]
	}
	return v
}

// appendSlabMembers appends every vertex id of the slab based at key (the
// full non-tied box translated to the slab's tied coordinates).
func (e *engine) appendSlabMembers(dst []int, key int) []int {
	if len(e.nonT) == 0 {
		return append(dst, key)
	}
	coords := make([]int, len(e.nonT))
	for {
		id := key
		for i, b := range e.nonT {
			id += coords[i] * e.stride[b]
		}
		dst = append(dst, id)
		i := len(coords) - 1
		for ; i >= 0; i-- {
			coords[i]++
			if coords[i] < e.dims[e.nonT[i]] {
				break
			}
			coords[i] = 0
		}
		if i < 0 {
			return dst
		}
	}
}

// solveSubgraph orders an arbitrary member set by a true spectral solve of
// its induced grid subgraph — the solver path's own recursion step, used
// only for band-shaped tie groups outside the closed form.
func (e *engine) solveSubgraph(out []int, members []int) ([]int, error) {
	g := graph.New(len(members))
	idx := make(map[int]int, len(members))
	for li, id := range members {
		idx[id] = li
	}
	for li, id := range members {
		for axis, side := range e.dims {
			st := e.stride[axis]
			if (id/st)%side+1 < side {
				if lj, ok := idx[id+st]; ok {
					if err := g.AddUnitEdge(li, lj); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	res, err := core.SpectralOrder(g, core.Options{Solver: eigen.Options{Seed: e.seed}})
	if err != nil {
		return nil, err
	}
	for _, v := range res.Order {
		out = append(out, members[v])
	}
	return out, nil
}

// slabRanks returns (memoized) the id offsets of one slab's vertices in the
// recursive spectral order of the non-tied sub-grid.
func (e *engine) slabRanks() ([]int, error) {
	if e.slabOffsets != nil {
		return e.slabOffsets, nil
	}
	if len(e.nonT) == 0 {
		e.slabOffsets = []int{0}
		return e.slabOffsets, nil
	}
	subDims := make([]int, len(e.nonT))
	for i, b := range e.nonT {
		subDims[i] = e.dims[b]
	}
	subGrid, err := graph.NewGrid(subDims...)
	if err != nil {
		return nil, err
	}
	sub, err := GridOrder(subGrid, e.seed)
	if err != nil {
		return nil, err
	}
	offsets := make([]int, len(sub.Order))
	coords := make([]int, len(subDims))
	for r, v := range sub.Order {
		subGrid.Coords(v, coords)
		off := 0
		for i, c := range coords {
			off += c * e.stride[e.nonT[i]]
		}
		offsets[r] = off
	}
	e.slabOffsets = offsets
	return offsets, nil
}
