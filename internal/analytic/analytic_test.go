package analytic

import (
	"math"
	"testing"

	"github.com/spectral-lpm/spectrallpm/internal/core"
	"github.com/spectral-lpm/spectrallpm/internal/eigen"
	"github.com/spectral-lpm/spectrallpm/internal/graph"
)

// TestGridOrderMatchesSolver is the package-level oracle: the closed-form
// order equals the eigensolver order rank-for-rank on rectangular, square,
// degenerate (1×n), and 3-D grids, under the same seed.
func TestGridOrderMatchesSolver(t *testing.T) {
	cases := [][]int{
		{1}, {2}, {5}, {12},
		{1, 7}, {7, 1}, {9, 4}, {4, 9}, {2, 2}, {3, 3}, {6, 6}, {7, 7},
		{16, 16}, {12, 5},
		{3, 3, 3}, {4, 4, 2}, {2, 2, 2}, {5, 1, 5}, {2, 3, 4}, {1, 1, 6},
		{2, 2, 2, 2},
	}
	for _, dims := range cases {
		for _, seed := range []int64{0, 1, 42} {
			grid := graph.MustGrid(dims...)
			got, err := GridOrder(grid, seed)
			if err != nil {
				t.Fatalf("dims %v: %v", dims, err)
			}
			g := graph.GridGraph(grid, graph.Orthogonal)
			want, err := core.SpectralOrder(g, core.Options{Solver: eigen.Options{Seed: seed}})
			if err != nil {
				t.Fatalf("dims %v: solver: %v", dims, err)
			}
			for r := range want.Order {
				if got.Order[r] != want.Order[r] {
					t.Fatalf("dims %v seed %d: rank %d holds vertex %d analytically, %d by solver\nanalytic: %v\nsolver:   %v",
						dims, seed, r, got.Order[r], want.Order[r], got.Order, want.Order)
				}
			}
			if len(want.Lambda2) != 1 && grid.Size() > 1 {
				t.Fatalf("dims %v: %d solver components", dims, len(want.Lambda2))
			}
			if grid.Size() > 1 && math.Abs(got.Lambda2-want.Lambda2[0]) > 1e-7*(1+want.Lambda2[0]) {
				t.Fatalf("dims %v: λ₂ analytic %v, solver %v", dims, got.Lambda2, want.Lambda2[0])
			}
		}
	}
}

// TestGridOrderInversePowerOracle pins the closed form against the sparse
// production solver (above the dense cutoff), not just dense Jacobi.
func TestGridOrderInversePowerOracle(t *testing.T) {
	for _, dims := range [][]int{{20, 20}, {25, 13}, {7, 7, 7}} {
		grid := graph.MustGrid(dims...)
		got, err := GridOrder(grid, 1)
		if err != nil {
			t.Fatal(err)
		}
		g := graph.GridGraph(grid, graph.Orthogonal)
		want, err := core.SpectralOrder(g, core.Options{
			Solver: eigen.Options{Method: eigen.MethodInversePower, Seed: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		for r := range want.Order {
			if got.Order[r] != want.Order[r] {
				t.Fatalf("dims %v: rank %d holds %d analytically, %d by inverse power",
					dims, r, got.Order[r], want.Order[r])
			}
		}
	}
}

func TestGridOrderBasicInvariants(t *testing.T) {
	for _, dims := range [][]int{{1}, {9}, {1, 9}, {6, 4}, {5, 5}, {3, 4, 5}} {
		grid := graph.MustGrid(dims...)
		res, err := GridOrder(grid, 0)
		if err != nil {
			t.Fatal(err)
		}
		n := grid.Size()
		seen := make([]bool, n)
		for r, v := range res.Order {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("dims %v: order not a permutation: %v", dims, res.Order)
			}
			seen[v] = true
			if res.Rank[v] != r {
				t.Fatalf("dims %v: rank/order inverse broken at %d", dims, v)
			}
		}
		if n > 1 {
			m := 0
			for _, s := range dims {
				if s > m {
					m = s
				}
			}
			want := 2 * (1 - math.Cos(math.Pi/float64(m)))
			if res.Lambda2 != want {
				t.Fatalf("dims %v: λ₂ %v, want %v", dims, res.Lambda2, want)
			}
		}
	}
}

// TestPathOrderIsSequential: the canonical orientation starts a path at
// vertex 0, the provably optimal arrangement.
func TestPathOrderIsSequential(t *testing.T) {
	res, err := GridOrder(graph.MustGrid(17), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Order {
		if v != i {
			t.Fatalf("path order = %v", res.Order)
		}
	}
}

func TestApplicable(t *testing.T) {
	if !Applicable(graph.MustGrid(4, 4)) || !Applicable(graph.MustGrid(1)) ||
		!Applicable(graph.MustGrid(2, 2, 2, 2, 2, 2, 2, 2)) {
		t.Error("expected applicable")
	}
	if Applicable(graph.MustGrid(2, 2, 2, 2, 2, 2, 2, 2, 2)) {
		t.Error("9 tied axes should exceed the mixing cap")
	}
}

// TestBalancedMixIsFair: on a square grid the analytic mix must spread λ₂
// energy across both axes (the fairness the balanced policy exists for).
func TestBalancedMixIsFair(t *testing.T) {
	grid := graph.MustGrid(8, 8)
	res, err := GridOrder(grid, 0)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.GridGraph(grid, graph.Orthogonal)
	energy := make([]float64, 2)
	cu := make([]int, 2)
	cv := make([]int, 2)
	g.Edges(func(u, v int, w float64) {
		grid.Coords(u, cu)
		grid.Coords(v, cv)
		d := res.Fiedler[u] - res.Fiedler[v]
		for k := 0; k < 2; k++ {
			if cu[k] != cv[k] {
				energy[k] += w * d * d
				break
			}
		}
	})
	total := energy[0] + energy[1]
	for k, e := range energy {
		if e/total < 0.25 {
			t.Errorf("axis %d carries only %.1f%% of λ₂ energy", k, 100*e/total)
		}
	}
}
