package core

import (
	"math"
	"math/rand"

	"github.com/spectral-lpm/spectrallpm/internal/graph"
	"github.com/spectral-lpm/spectrallpm/internal/la"
)

// The balanced degeneracy policy picks, within the λ₂ eigenspace, the unit
// vector minimizing the quartic edge objective Σ w·(x_u−x_v)⁴. The
// minimizer is generally not unique — on a square grid every sign pattern
// of the diagonal axis mix attains the same minimum — so "minimize the
// quartic" alone does not pin one vector. The engine below makes the choice
// a function of the EIGENSPACE (the subspace itself), not of the particular
// orthonormal basis a solver happened to return for it:
//
//   - Starts are seeded pseudorandom vectors in the AMBIENT space projected
//     onto the eigenspace. With any orthonormal basis of the same subspace,
//     the projection is the same ambient vector, so the descent — whose
//     every step (tangent-projected gradient, normalization, backtracking)
//     is basis-covariant — walks the same trajectory in x-space.
//   - Among the descent results within quarticPickTol of the best objective
//     (the symmetric minimizers of a degenerate grid), the winner maximizes
//     a fixed deterministic linear functional Σ mixWeight(v)·x_v, which
//     separates the sign patterns (and ±x) by O(1) margins where objective
//     values differ only by rounding.
//
// The closed-form grid engine (internal/analytic) evaluates the same
// objective over the analytic cosine basis through this same engine, which
// is why its mixes agree with the eigensolver's rank-for-rank.

// EigenspaceMix is a degenerate λ₂ eigenspace presented to MixBalanced: an
// m-dimensional subspace of R^n with the quartic edge objective expressed
// in the coordinates of an orthonormal basis.
type EigenspaceMix interface {
	// Ambient returns n, the number of vertices.
	Ambient() int
	// Dim returns m, the eigenspace dimension.
	Dim() int
	// Project writes c = Bᵀr, the coefficients of the orthogonal projection
	// of ambient vector r onto the eigenspace. c has length Dim.
	Project(r []float64, c []float64)
	// Objective returns Σ_{(u,v)∈E} w·(x_u−x_v)⁴ for x = Bc.
	Objective(c []float64) float64
	// Gradient writes ∂Objective/∂c into out (length Dim).
	Gradient(c []float64, out []float64)
	// Assemble returns x = Bc as a fresh ambient vector.
	Assemble(c []float64) []float64
}

// quarticPickTol is the relative objective slack within which two descent
// results count as the same minimum value and the linear functional decides.
const quarticPickTol = 1e-9

// mixWeight is the fixed per-vertex weight of the canonicalizing linear
// functional (a splitmix64 hash mapped to [−1,1)) — deterministic, stateless
// and identical on every path that mixes an eigenspace.
func mixWeight(v int) float64 {
	z := uint64(v)*0x9E3779B97F4A7C15 + 0xBF58476D1CE4E5B9
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11)/(1<<52) - 1
}

// mixFunctional evaluates the canonicalizing functional Σ mixWeight(v)·x_v.
func mixFunctional(x []float64) float64 {
	var s float64
	for v, xv := range x {
		s += mixWeight(v) * xv
	}
	return s
}

// MixBalanced returns the balanced unit vector of the eigenspace: the
// quartic minimizer selected basis-independently as described above. seed
// drives the deterministic starts (the same seed always returns the same
// vector for the same subspace, whatever basis presents it).
func MixBalanced(sp EigenspaceMix, seed int64) []float64 {
	n, m := sp.Ambient(), sp.Dim()
	grad := make([]float64, m)
	trial := make([]float64, m)
	descend := func(c []float64) float64 {
		f := sp.Objective(c)
		step := 0.5
		for it := 0; it < 200 && step > 1e-12; it++ {
			sp.Gradient(c, grad)
			// Project the gradient onto the tangent space of the sphere.
			la.Axpy(-la.Dot(grad, c), c, grad)
			gn := la.Norm2(grad)
			if gn < 1e-14*(1+f) {
				break
			}
			la.Copy(trial, c)
			la.Axpy(-step/gn, grad, trial)
			if la.Normalize(trial) == 0 {
				step *= 0.5
				continue
			}
			if ft := sp.Objective(trial); ft < f {
				la.Copy(c, trial)
				f = ft
				step *= 1.2
			} else {
				step *= 0.5
			}
		}
		return f
	}

	rng := rand.New(rand.NewSource(seed + 12345))
	r := make([]float64, n)
	type candidate struct {
		c []float64
		f float64
	}
	var cands []candidate
	for s := 0; s < 3+m; s++ {
		// The full ambient vector is always drawn, so the rng stream (and
		// with it every later start) is identical on every path.
		for i := range r {
			r[i] = rng.NormFloat64()
		}
		c := make([]float64, m)
		sp.Project(r, c)
		if la.Normalize(c) == 0 {
			continue // start orthogonal to the eigenspace; vanishingly rare
		}
		f := descend(c)
		cands = append(cands, candidate{c: c, f: f})
	}
	if len(cands) == 0 {
		// Every start vanished under projection (not reachable in practice);
		// any unit coefficient vector is still an optimal Theorem-1 answer.
		c := make([]float64, m)
		c[0] = 1
		return sp.Assemble(c)
	}
	bestF := math.Inf(1)
	for _, cd := range cands {
		if cd.f < bestF {
			bestF = cd.f
		}
	}
	var best []float64
	bestL := math.Inf(-1)
	for _, cd := range cands {
		if cd.f > bestF+quarticPickTol*(1+bestF) {
			continue
		}
		x := sp.Assemble(cd.c)
		if l := mixFunctional(x); l > bestL {
			bestL = l
			best = x
		}
	}
	la.Normalize(best)
	return best
}

// edgeMixSpace is the eigensolver-path EigenspaceMix: the quartic objective
// materialized as per-edge differences of the numeric basis vectors.
type edgeMixSpace struct {
	n     int
	basis [][]float64
	edges []edgeDiff
}

type edgeDiff struct {
	w float64
	d []float64
}

func newEdgeMixSpace(g *graph.Graph, basis [][]float64) *edgeMixSpace {
	sp := &edgeMixSpace{n: g.N(), basis: basis}
	m := len(basis)
	g.Edges(func(u, v int, w float64) {
		d := make([]float64, m)
		for j, b := range basis {
			d[j] = b[u] - b[v]
		}
		sp.edges = append(sp.edges, edgeDiff{w: w, d: d})
	})
	return sp
}

func (sp *edgeMixSpace) Ambient() int { return sp.n }
func (sp *edgeMixSpace) Dim() int     { return len(sp.basis) }

func (sp *edgeMixSpace) Project(r []float64, c []float64) {
	for j, b := range sp.basis {
		c[j] = la.Dot(r, b)
	}
}

func (sp *edgeMixSpace) Objective(c []float64) float64 {
	var f float64
	for _, e := range sp.edges {
		var delta float64
		for j := range c {
			delta += c[j] * e.d[j]
		}
		sq := delta * delta
		f += e.w * sq * sq
	}
	return f
}

func (sp *edgeMixSpace) Gradient(c []float64, out []float64) {
	la.Zero(out)
	for _, e := range sp.edges {
		var delta float64
		for j := range c {
			delta += c[j] * e.d[j]
		}
		coef := 4 * e.w * delta * delta * delta
		for j := range out {
			out[j] += coef * e.d[j]
		}
	}
}

func (sp *edgeMixSpace) Assemble(c []float64) []float64 {
	x := make([]float64, sp.n)
	for j, b := range sp.basis {
		la.Axpy(c[j], b, x)
	}
	return x
}
