package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/spectral-lpm/spectrallpm/internal/graph"
)

func TestOptimalLinearArrangementPath(t *testing.T) {
	// The optimal arrangement of a path is the path itself: cost n-1.
	for _, n := range []int{2, 5, 9, 12} {
		rank, cost, err := OptimalLinearArrangement(graph.Path(n))
		if err != nil {
			t.Fatal(err)
		}
		if cost != float64(n-1) {
			t.Errorf("P%d optimal cost = %v, want %d", n, cost, n-1)
		}
		// The returned rank must achieve the reported cost.
		got, err := LinearArrangementCost(graph.Path(n), rank)
		if err != nil || got != cost {
			t.Errorf("P%d rank cost %v != reported %v (err %v)", n, got, cost, err)
		}
	}
}

func TestOptimalLinearArrangementKnownGraphs(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		want float64
	}{
		// K4: every pair adjacent. Any order costs Σ|i-j| over all pairs:
		// 1·3 + 2·2 + 3·1 = 10.
		{"K4", graph.Complete(4), 10},
		// Star S5 (center + 4 leaves): best places center in the middle;
		// distances 1,1,2,2 -> 6.
		{"star5", graph.Star(5), 6},
		// C4 cycle: best is 1+1+1+3? No: order 0,1,3,2... minimum is 6
		// for C4 (two edges stretched to 2: 1+2+1+2).
		{"C4", graph.Cycle(4), 6},
		// Single edge.
		{"K2", graph.Path(2), 1},
		// Empty graph on 3 vertices.
		{"empty3", graph.New(3), 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, cost, err := OptimalLinearArrangement(tc.g)
			if err != nil {
				t.Fatal(err)
			}
			if cost != tc.want {
				t.Errorf("cost = %v, want %v", cost, tc.want)
			}
		})
	}
}

func TestOptimalLinearArrangementGrid2x3(t *testing.T) {
	// 2x3 grid: brute-force verified optimum. Compare DP against an
	// exhaustive permutation search.
	g := graph.GridGraph(graph.MustGrid(2, 3), graph.Orthogonal)
	_, dpCost, err := OptimalLinearArrangement(g)
	if err != nil {
		t.Fatal(err)
	}
	best := math.Inf(1)
	perm := []int{0, 1, 2, 3, 4, 5}
	var rec func(k int)
	rank := make([]int, 6)
	rec = func(k int) {
		if k == 6 {
			for pos, v := range perm {
				rank[v] = pos
			}
			if c, _ := LinearArrangementCost(g, rank); c < best {
				best = c
			}
			return
		}
		for i := k; i < 6; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	if dpCost != best {
		t.Errorf("DP cost %v != brute force %v", dpCost, best)
	}
}

func TestOptimalLinearArrangementLimits(t *testing.T) {
	if _, _, err := OptimalLinearArrangement(graph.Path(MaxExactMinLAVertices + 1)); err == nil {
		t.Error("oversized graph accepted")
	}
	rank, cost, err := OptimalLinearArrangement(graph.New(0))
	if err != nil || rank != nil || cost != 0 {
		t.Error("empty graph mishandled")
	}
}

func TestOptimalLinearArrangementWeighted(t *testing.T) {
	// Triangle with one heavy edge: the heavy pair must be adjacent.
	g := graph.New(3)
	mustAdd(t, g, 0, 1, 10)
	mustAdd(t, g, 1, 2, 1)
	mustAdd(t, g, 0, 2, 1)
	rank, cost, err := OptimalLinearArrangement(g)
	if err != nil {
		t.Fatal(err)
	}
	if d := rank[0] - rank[1]; d != 1 && d != -1 {
		t.Errorf("heavy pair not adjacent: ranks %v", rank)
	}
	// 10·1 + (1+2) in some order = 13.
	if cost != 13 {
		t.Errorf("cost = %v, want 13", cost)
	}
}

func TestSpectralOptimalityRatioOnPaths(t *testing.T) {
	// The spectral order of a path is exactly optimal: ratio 1.
	ratio, sc, oc, err := SpectralOptimalityRatio(graph.Path(12), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ratio != 1 || sc != oc {
		t.Errorf("path ratio = %v (%v vs %v)", ratio, sc, oc)
	}
}

func TestSpectralOptimalityRatioRandomGraphs(t *testing.T) {
	// On small random connected graphs the spectral relaxation stays
	// within a modest factor of the exact optimum — and never below 1.
	rng := rand.New(rand.NewSource(5))
	var worst float64
	for trial := 0; trial < 15; trial++ {
		n := 6 + rng.Intn(7)
		g := graph.Path(n)
		for k := 0; k < n/2; k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				_ = g.AddEdge(u, v, 1)
			}
		}
		ratio, sc, oc, err := SpectralOptimalityRatio(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if ratio < 1-1e-9 {
			t.Fatalf("trial %d: ratio %v < 1 (spectral %v, optimal %v)", trial, ratio, sc, oc)
		}
		if ratio > worst {
			worst = ratio
		}
	}
	if worst > 1.8 {
		t.Errorf("worst spectral/optimal ratio %v suspiciously large", worst)
	}
	t.Logf("worst spectral/optimal minLA ratio over random graphs: %.3f", worst)
}

func TestSpectralOptimalityRatioGrid(t *testing.T) {
	// 4x4 grid (16 vertices): exact DP is feasible; spectral should be
	// close to optimal.
	g := graph.GridGraph(graph.MustGrid(4, 4), graph.Orthogonal)
	ratio, sc, oc, err := SpectralOptimalityRatio(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("4x4 grid: spectral %v vs optimal %v (ratio %.3f)", sc, oc, ratio)
	if ratio > 1.5 {
		t.Errorf("spectral/optimal = %v on 4x4 grid", ratio)
	}
}
