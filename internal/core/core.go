// Package core implements Spectral LPM, the paper's contribution: an
// optimal locality-preserving mapping from a multi-dimensional point set to
// a linear order using the spectral (Fiedler) order of the point-set graph
// rather than a fractal space-filling curve.
//
// The algorithm follows the paper's Figure 2 exactly:
//
//  1. Model the point set P as a graph G(V,E) — an edge wherever two points
//     are at Manhattan distance 1 (package graph builds these, plus the §4
//     weighted/affinity/connectivity variants).
//  2. Form the Laplacian L(G) = D(G) − A(G).
//  3. Compute the second-smallest eigenvalue λ₂ and its eigenvector, the
//     Fiedler vector (package eigen).
//  4. Assign each vertex its Fiedler component.
//  5. The linear order S of P is the order of the assigned values.
//
// By Theorems 1–3 (Fiedler 1973; Juvan–Mohar 1992; Chan–Ciarlet–Szeto 1997)
// the Fiedler vector minimizes Σ_{(i,j)∈E} w·(x_i − x_j)² over unit vectors
// orthogonal to the all-ones vector, making the induced order a globally
// optimal (relaxed) locality-preserving mapping for the chosen graph.
//
// Disconnected graphs are handled by ordering each connected component
// independently and concatenating, since the Fiedler value of a disconnected
// graph is 0 and its eigenvector carries no intra-component information.
package core

import (
	"errors"
	"fmt"
	"sort"

	"github.com/spectral-lpm/spectrallpm/internal/eigen"
	"github.com/spectral-lpm/spectrallpm/internal/graph"
)

// Options configures SpectralOrder.
type Options struct {
	// Solver tunes the eigensolver (method, tolerance, seed). The zero
	// value uses automatic method selection with a fixed seed, so results
	// are deterministic.
	Solver eigen.Options
	// Degeneracy selects how a degenerate λ₂ eigenspace is resolved; the
	// zero value (DegeneracyBalanced) reproduces the paper's fairness
	// results on symmetric grids. See DegeneracyPolicy.
	Degeneracy DegeneracyPolicy
}

// Result is the outcome of Spectral LPM on a graph.
type Result struct {
	// Order is the paper's linear order S: Order[r] is the vertex placed
	// at rank r.
	Order []int
	// Rank is the inverse permutation: Rank[v] is the 1-D position of
	// vertex v.
	Rank []int
	// Fiedler holds each vertex's Fiedler-vector component (step 4's x_i),
	// per component of the graph. Ties in these values are broken by
	// vertex id to keep the order deterministic.
	Fiedler []float64
	// Lambda2 is λ₂ (the algebraic connectivity) of each connected
	// component, in component order.
	Lambda2 []float64
	// Components is the number of connected components ordered
	// independently.
	Components int
}

// SpectralOrder runs Spectral LPM (the paper's Figure 2) on g. The graph
// may be weighted (§4): edge weights express the priority of mapping the
// endpoints near each other. Components are ordered independently and
// concatenated in order of their smallest vertex id.
func SpectralOrder(g *graph.Graph, opt Options) (*Result, error) {
	n := g.N()
	res := &Result{
		Order:   make([]int, 0, n),
		Rank:    make([]int, n),
		Fiedler: make([]float64, n),
	}
	if n == 0 {
		return res, nil
	}
	comps := g.Components()
	res.Components = len(comps)
	for _, comp := range comps {
		switch len(comp) {
		case 1:
			res.Order = append(res.Order, comp[0])
			res.Lambda2 = append(res.Lambda2, 0)
			continue
		case 2:
			// K₂: the Fiedler pair is λ₂ = 2w with vector (±1/√2, ∓1/√2);
			// order deterministically by vertex id.
			w := g.EdgeWeight(comp[0], comp[1])
			res.Fiedler[comp[0]] = -0.7071067811865476
			res.Fiedler[comp[1]] = 0.7071067811865476
			res.Order = append(res.Order, comp[0], comp[1])
			res.Lambda2 = append(res.Lambda2, 2*w)
			continue
		}
		sub, ids, err := g.Subgraph(comp)
		if err != nil {
			return nil, fmt.Errorf("core: component extraction: %w", err)
		}
		lambda2, vec, err := resolveFiedler(sub, opt)
		if err != nil {
			return nil, fmt.Errorf("core: Fiedler solve on %d-vertex component: %w", len(comp), err)
		}
		res.Lambda2 = append(res.Lambda2, lambda2)
		for i, v := range ids {
			res.Fiedler[v] = vec[i]
		}
		ordered := append([]int(nil), ids...)
		sort.SliceStable(ordered, func(a, b int) bool {
			fa, fb := res.Fiedler[ordered[a]], res.Fiedler[ordered[b]]
			if fa != fb {
				return fa < fb
			}
			return ordered[a] < ordered[b]
		})
		res.Order = append(res.Order, ordered...)
	}
	for r, v := range res.Order {
		res.Rank[v] = r
	}
	return res, nil
}

// ArrangementCost returns the paper's Theorem 1 objective for an arbitrary
// vertex assignment x: Σ_{(u,v)∈E} w(u,v)·(x_u − x_v)². The Fiedler vector
// minimizes it over unit vectors orthogonal to ones, with minimum value λ₂.
func ArrangementCost(g *graph.Graph, x []float64) (float64, error) {
	if len(x) != g.N() {
		return 0, errors.New("core: assignment length mismatch")
	}
	var cost float64
	g.Edges(func(u, v int, w float64) {
		d := x[u] - x[v]
		cost += w * d * d
	})
	return cost, nil
}

// LinearArrangementCost returns the discrete minimum-linear-arrangement
// objective Σ_{(u,v)∈E} w(u,v)·|rank_u − rank_v| for a rank assignment —
// the combinatorial quantity the spectral order approximates (Juvan–Mohar).
func LinearArrangementCost(g *graph.Graph, rank []int) (float64, error) {
	if len(rank) != g.N() {
		return 0, errors.New("core: rank length mismatch")
	}
	var cost float64
	g.Edges(func(u, v int, w float64) {
		d := rank[u] - rank[v]
		if d < 0 {
			d = -d
		}
		cost += w * float64(d)
	})
	return cost, nil
}

// Bisect splits a graph into two halves at the median of the spectral
// order — the spectral bisection the paper cites (Chan, Ciarlet, and Szeto
// 1997) in its optimality argument, usable for declustering and
// partitioning applications. Vertices at rank < ⌈n/2⌉ form the first half;
// both halves are returned sorted by vertex id.
func Bisect(g *graph.Graph, opt Options) (left, right []int, err error) {
	res, err := SpectralOrder(g, opt)
	if err != nil {
		return nil, nil, err
	}
	half := (g.N() + 1) / 2
	left = append([]int(nil), res.Order[:half]...)
	right = append([]int(nil), res.Order[half:]...)
	sort.Ints(left)
	sort.Ints(right)
	return left, right, nil
}
