// Package core implements Spectral LPM, the paper's contribution: an
// optimal locality-preserving mapping from a multi-dimensional point set to
// a linear order using the spectral (Fiedler) order of the point-set graph
// rather than a fractal space-filling curve.
//
// The algorithm follows the paper's Figure 2 exactly:
//
//  1. Model the point set P as a graph G(V,E) — an edge wherever two points
//     are at Manhattan distance 1 (package graph builds these, plus the §4
//     weighted/affinity/connectivity variants).
//  2. Form the Laplacian L(G) = D(G) − A(G).
//  3. Compute the second-smallest eigenvalue λ₂ and its eigenvector, the
//     Fiedler vector (package eigen).
//  4. Assign each vertex its Fiedler component.
//  5. The linear order S of P is the order of the assigned values.
//
// By Theorems 1–3 (Fiedler 1973; Juvan–Mohar 1992; Chan–Ciarlet–Szeto 1997)
// the Fiedler vector minimizes Σ_{(i,j)∈E} w·(x_i − x_j)² over unit vectors
// orthogonal to the all-ones vector, making the induced order a globally
// optimal (relaxed) locality-preserving mapping for the chosen graph.
//
// Disconnected graphs are handled by ordering each connected component
// independently and concatenating, since the Fiedler value of a disconnected
// graph is 0 and its eigenvector carries no intra-component information.
package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/spectral-lpm/spectrallpm/internal/eigen"
	"github.com/spectral-lpm/spectrallpm/internal/graph"
)

// Options configures SpectralOrder.
type Options struct {
	// Solver tunes the eigensolver (method, tolerance, seed). The zero
	// value uses automatic method selection with a fixed seed, so results
	// are deterministic.
	Solver eigen.Options
	// Degeneracy selects how a degenerate λ₂ eigenspace is resolved; the
	// zero value (DegeneracyBalanced) reproduces the paper's fairness
	// results on symmetric grids. See DegeneracyPolicy.
	Degeneracy DegeneracyPolicy
}

// Result is the outcome of Spectral LPM on a graph.
type Result struct {
	// Order is the paper's linear order S: Order[r] is the vertex placed
	// at rank r.
	Order []int
	// Rank is the inverse permutation: Rank[v] is the 1-D position of
	// vertex v.
	Rank []int
	// Fiedler holds each vertex's Fiedler-vector component (step 4's x_i),
	// per component of the graph, oriented so the order ascends with the
	// values. Near-equal values form tie groups broken by the paper's
	// recursive tie-breaking (see OrderByValues in tiebreak.go).
	Fiedler []float64
	// Lambda2 is λ₂ (the algebraic connectivity) of each connected
	// component, in component order.
	Lambda2 []float64
	// Components is the number of connected components ordered
	// independently.
	Components int
}

// SpectralOrder runs Spectral LPM (the paper's Figure 2) on g. The graph
// may be weighted (§4): edge weights express the priority of mapping the
// endpoints near each other. Components are ordered independently and
// concatenated in order of their smallest vertex id.
func SpectralOrder(g *graph.Graph, opt Options) (*Result, error) {
	n := g.N()
	res := &Result{
		Order:   make([]int, 0, n),
		Rank:    make([]int, n),
		Fiedler: make([]float64, n),
	}
	if n == 0 {
		return res, nil
	}
	comps := g.Components()
	res.Components = len(comps)
	for _, comp := range comps {
		switch len(comp) {
		case 1:
			res.Order = append(res.Order, comp[0])
			res.Lambda2 = append(res.Lambda2, 0)
			continue
		case 2:
			// K₂: the Fiedler pair is λ₂ = 2w with vector (±1/√2, ∓1/√2);
			// order deterministically by vertex id.
			w := g.EdgeWeight(comp[0], comp[1])
			res.Fiedler[comp[0]] = -0.7071067811865476
			res.Fiedler[comp[1]] = 0.7071067811865476
			res.Order = append(res.Order, comp[0], comp[1])
			res.Lambda2 = append(res.Lambda2, 2*w)
			continue
		}
		sub, ids, err := g.Subgraph(comp)
		if err != nil {
			return nil, fmt.Errorf("core: component extraction: %w", err)
		}
		lambda2, vec, err := resolveFiedler(sub, opt)
		if err != nil {
			return nil, fmt.Errorf("core: Fiedler solve on %d-vertex component: %w", len(comp), err)
		}
		res.Lambda2 = append(res.Lambda2, lambda2)
		for i, v := range ids {
			res.Fiedler[v] = vec[i]
		}
		// Canonical ordering (see tiebreak.go): snapped tie groups, the
		// paper's recursive tie-breaking on each group, deterministic
		// orientation. This is what makes the order a function of the
		// spectrum instead of the solver's rounding.
		vals := make([]float64, len(ids))
		for i, v := range ids {
			vals[i] = res.Fiedler[v]
		}
		// Tie groups with identical induced subgraphs share one recursive
		// solve: the constant-Fiedler slabs of a rectangular grid are
		// translation-congruent, so one slab's order serves all of them
		// (the analytic engine memoizes the same way in slabRanks).
		tieCache := map[string][]int{}
		ordered, flipped, err := OrderByValues(ids, vals, func(group []int) ([]int, error) {
			return resolveTieGroup(g, group, opt, tieCache)
		})
		if err != nil {
			return nil, fmt.Errorf("core: tie-break on %d-vertex component: %w", len(comp), err)
		}
		if flipped {
			for _, v := range comp {
				res.Fiedler[v] = -res.Fiedler[v]
			}
		}
		res.Order = append(res.Order, ordered...)
	}
	for r, v := range res.Order {
		res.Rank[v] = r
	}
	return res, nil
}

// resolveTieGroup is the paper's recursive tie-breaking: the vertices of one
// snapped tie group are ordered by Spectral LPM on the subgraph they induce.
// On a rectangular grid the tied vertices are a slab perpendicular to the
// longest axis and the recursion orders the slab as the (d−1)-dimensional
// grid it is; on a balanced square mix the tied vertices are mutually
// non-adjacent and the recursion degrades to singleton components in id
// order. Termination: the group is a strict subset of its component
// (OrderByValues handles the full-component case itself), so every level
// strictly shrinks. cache maps a canonical subgraph-shape key to its local
// order, so congruent groups (the M slabs of a rectangular grid, which
// induce identical local subgraphs) pay for one solve, not M.
func resolveTieGroup(g *graph.Graph, group []int, opt Options, cache map[string][]int) ([]int, error) {
	if len(group) == 2 {
		// Either possible induced subgraph orders a pair ascending by id:
		// K₂'s deterministic fast path and two singleton components both
		// emit the smaller id first. Balanced square grids produce ~N/2
		// such pair groups, so skipping the Subgraph machinery here is the
		// difference between a per-group map and nothing.
		return group, nil
	}
	sub, sids, err := g.Subgraph(group)
	if err != nil {
		return nil, err
	}
	key := subgraphKey(sub)
	local, ok := cache[key]
	if !ok {
		res, err := SpectralOrder(sub, opt)
		if err != nil {
			return nil, err
		}
		local = res.Order
		cache[key] = local
	}
	out := make([]int, len(group))
	for r, v := range local {
		out[r] = sids[v]
	}
	return out, nil
}

// subgraphKey serializes a subgraph's structure (vertex count plus the
// weighted edge list in Edges's deterministic iteration order) into a cache
// key. Subgraph relabels vertices in ascending original-id order, so two
// translation-congruent tie groups produce byte-identical keys — and
// SpectralOrder is deterministic in (graph, options), so equal keys imply
// equal local orders.
func subgraphKey(g *graph.Graph) string {
	buf := make([]byte, 0, 16+16*g.NumEdges())
	buf = binary.AppendVarint(buf, int64(g.N()))
	g.Edges(func(u, v int, w float64) {
		buf = binary.AppendVarint(buf, int64(u))
		buf = binary.AppendVarint(buf, int64(v))
		buf = binary.AppendUvarint(buf, math.Float64bits(w))
	})
	return string(buf)
}

// ArrangementCost returns the paper's Theorem 1 objective for an arbitrary
// vertex assignment x: Σ_{(u,v)∈E} w(u,v)·(x_u − x_v)². The Fiedler vector
// minimizes it over unit vectors orthogonal to ones, with minimum value λ₂.
func ArrangementCost(g *graph.Graph, x []float64) (float64, error) {
	if len(x) != g.N() {
		return 0, errors.New("core: assignment length mismatch")
	}
	var cost float64
	g.Edges(func(u, v int, w float64) {
		d := x[u] - x[v]
		cost += w * d * d
	})
	return cost, nil
}

// LinearArrangementCost returns the discrete minimum-linear-arrangement
// objective Σ_{(u,v)∈E} w(u,v)·|rank_u − rank_v| for a rank assignment —
// the combinatorial quantity the spectral order approximates (Juvan–Mohar).
func LinearArrangementCost(g *graph.Graph, rank []int) (float64, error) {
	if len(rank) != g.N() {
		return 0, errors.New("core: rank length mismatch")
	}
	var cost float64
	g.Edges(func(u, v int, w float64) {
		d := rank[u] - rank[v]
		if d < 0 {
			d = -d
		}
		cost += w * float64(d)
	})
	return cost, nil
}

// Bisect splits a graph into two halves at the median of the spectral
// order — the spectral bisection the paper cites (Chan, Ciarlet, and Szeto
// 1997) in its optimality argument, usable for declustering and
// partitioning applications. Vertices at rank < ⌈n/2⌉ form the first half;
// both halves are returned sorted by vertex id.
func Bisect(g *graph.Graph, opt Options) (left, right []int, err error) {
	res, err := SpectralOrder(g, opt)
	if err != nil {
		return nil, nil, err
	}
	half := (g.N() + 1) / 2
	left = append([]int(nil), res.Order[:half]...)
	right = append([]int(nil), res.Order[half:]...)
	sort.Ints(left)
	sort.Ints(right)
	return left, right, nil
}
