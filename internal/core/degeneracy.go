package core

import (
	"math"

	"github.com/spectral-lpm/spectrallpm/internal/eigen"
	"github.com/spectral-lpm/spectrallpm/internal/graph"
	"github.com/spectral-lpm/spectrallpm/internal/la"
)

// DegeneracyPolicy selects how SpectralOrder resolves a degenerate λ₂
// eigenspace. On symmetric point sets — every hypercubic grid, including
// the paper's own 3x3 example — λ₂ has multiplicity > 1 and *every* unit
// vector of the eigenspace satisfies the paper's Theorem 1 equally well,
// yet the induced orders differ wildly: an axis-aligned eigenvector
// degenerates to a Sweep-like order that is maximally unfair between
// dimensions, while a mixed vector (like the one the paper prints in
// Figure 3d) treats all dimensions alike.
type DegeneracyPolicy int

const (
	// DegeneracyBalanced (default) picks, within the λ₂ eigenspace, the
	// unit vector minimizing the quartic edge objective
	// Σ_{(u,v)∈E} w·(x_u−x_v)⁴. All eigenspace vectors share the same
	// quadratic cost λ₂, so the quartic term is the natural tie-breaker:
	// it spreads the edge differences evenly over the edges, which on
	// grids selects the diagonal mix of the axis eigenvectors and restores
	// the fairness the paper reports (Figure 5b). The choice is
	// deterministic and basis-independent.
	DegeneracyBalanced DegeneracyPolicy = iota
	// DegeneracyRaw keeps whatever single eigenvector the solver returns —
	// the literal reading of the paper's Figure 2. Exposed for the
	// ablation benchmarks.
	DegeneracyRaw
)

// degeneracyRelTol is the relative eigenvalue gap below which two
// eigenvalues are treated as one degenerate cluster.
const degeneracyRelTol = 1e-6

// maxProbedMultiplicity caps how many eigenpairs the degeneracy probe
// computes; hypercubic grids in d dimensions have multiplicity d, so 8
// covers every practical case.
const maxProbedMultiplicity = 8

// multilevelDegenRelTol is the relative eigenvalue slack of the multilevel
// path's lightweight degeneracy probe. It is much looser than
// degeneracyRelTol because the probe's Rayleigh quotients come from a few
// inverse-power steps, not a converged eigensolve; mixing in a direction
// whose eigenvalue is within 0.1% of λ₂ changes the relaxation objective by
// at most that factor, while missing a true eigenspace member costs the
// axis-aligned unfairness the balanced policy exists to prevent.
const multilevelDegenRelTol = 1e-3

// probeIters bounds the inverse-power steps per probed eigenspace member on
// the multilevel path; each step is one CG solve, so the whole probe stays
// within a small multiple of the Fiedler solve itself. A random start needs
// roughly this many λ₂/λ₄ contractions before its Rayleigh quotient is
// within multilevelDegenRelTol of λ₂ on a degenerate grid.
const probeIters = 12

// resolveFiedler returns the Fiedler value and the eigenspace-resolved
// assignment vector for a connected graph, honoring the policy.
//
// When the solver options resolve to the multilevel method (explicitly, or
// via MethodAuto on a graph at or above MultilevelCutoff), the coarsen-
// prolong-refine driver runs instead of the single-level solvers. The
// balanced policy is still honored, but through a cheaper eigenspace probe:
// instead of SmallestK (several extra full eigensolves — exactly what the
// multilevel path exists to avoid), a handful of deflated inverse-power
// steps recover additional λ₂-eigenspace members, and the existing quartic
// minimizer mixes them. On a square grid the raw multilevel vector is often
// axis-aligned (Sweep-like, maximally unfair between dimensions); the probe
// restores the balanced diagonal mix at roughly 2x the solve cost.
func resolveFiedler(g *graph.Graph, opt Options) (float64, []float64, error) {
	if opt.Solver.Resolve(g.N(), true) == eigen.MethodMultilevel {
		// Assembled once and shared with the solver and the probe: CSR
		// assembly sorts every nonzero, which is not free at this scale.
		lap := g.Laplacian()
		fr, err := eigen.MultilevelFiedlerWithLaplacian(g, lap, opt.Solver)
		if err != nil {
			return 0, nil, err
		}
		if opt.Degeneracy == DegeneracyRaw {
			return fr.Value, fr.Vector, nil
		}
		basis := multilevelEigenspace(g, lap, fr, opt)
		if len(basis) <= 1 {
			return fr.Value, fr.Vector, nil
		}
		return fr.Value, minimizeQuartic(g, basis, opt.Solver.Seed), nil
	}
	op := eigen.CSROperator{M: g.Laplacian(), Workers: opt.Solver.Parallelism}
	fr, err := eigen.Fiedler(op, opt.Solver)
	if err != nil {
		return 0, nil, err
	}
	if opt.Degeneracy == DegeneracyRaw {
		return fr.Value, fr.Vector, nil
	}
	basis, err := fiedlerEigenspace(op, g.N(), fr.Value, opt)
	if err != nil || len(basis) <= 1 {
		// Simple eigenvalue (or probe failed — fall back to the plain
		// vector, which is always a valid answer).
		return fr.Value, fr.Vector, nil
	}
	v := minimizeQuartic(g, basis, opt.Solver.Seed)
	return fr.Value, v, nil
}

// multilevelEigenspace grows an orthonormal basis of the (near-)degenerate
// λ₂ eigenspace around a multilevel Fiedler vector, using cheap inverse-
// power probes (eigen.EigenspaceProbe) instead of full eigensolves. Probing
// stops at the first member whose Rayleigh quotient separates from λ₂, on
// any probe error (the Fiedler vector alone is always a valid answer), or
// at the multiplicity cap.
func multilevelEigenspace(g *graph.Graph, lap *la.CSR, fr eigen.Result, opt Options) [][]float64 {
	op := eigen.CSROperator{M: lap, Workers: opt.Solver.Parallelism}
	basis := [][]float64{fr.Vector}
	deflate := [][]float64{la.UnitOnes(g.N()), fr.Vector}
	limit := fr.Value * (1 + multilevelDegenRelTol)
	popt := opt.Solver
	for len(basis) < maxProbedMultiplicity {
		popt.Seed += 7919 // distinct start per probed member
		v, rq, err := eigen.EigenspaceProbe(op, popt, deflate, probeIters, limit)
		if err != nil || rq > limit {
			break
		}
		basis = append(basis, v)
		deflate = append(deflate, v)
	}
	return basis
}

// fiedlerEigenspace probes for eigenvalues clustered at λ₂ and returns an
// orthonormal basis of the cluster's eigenspace.
func fiedlerEigenspace(op eigen.Operator, n int, lambda2 float64, opt Options) ([][]float64, error) {
	k := 2
	for {
		if k > n-1 {
			k = n - 1
		}
		vals, vecs, err := eigen.SmallestK(op, k, opt.Solver)
		if err != nil {
			return nil, err
		}
		cluster := 1
		for cluster < len(vals) &&
			vals[cluster] <= lambda2+degeneracyRelTol*(1+math.Abs(lambda2)) {
			cluster++
		}
		if cluster < k || k >= n-1 || k >= maxProbedMultiplicity {
			if cluster > maxProbedMultiplicity {
				cluster = maxProbedMultiplicity
			}
			return vecs[:cluster], nil
		}
		k += 2
	}
}

// minimizeQuartic finds the unit eigenspace vector minimizing the quartic
// edge objective Σ w·(x_u − x_v)⁴ through the shared basis-independent
// engine (see quartic.go). m is tiny (≤ 8), so each evaluation is O(|E|·m).
func minimizeQuartic(g *graph.Graph, basis [][]float64, seed int64) []float64 {
	return MixBalanced(newEdgeMixSpace(g, basis), seed)
}
