package core

import (
	"math"
	"math/rand"

	"github.com/spectral-lpm/spectrallpm/internal/eigen"
	"github.com/spectral-lpm/spectrallpm/internal/graph"
	"github.com/spectral-lpm/spectrallpm/internal/la"
)

// DegeneracyPolicy selects how SpectralOrder resolves a degenerate λ₂
// eigenspace. On symmetric point sets — every hypercubic grid, including
// the paper's own 3x3 example — λ₂ has multiplicity > 1 and *every* unit
// vector of the eigenspace satisfies the paper's Theorem 1 equally well,
// yet the induced orders differ wildly: an axis-aligned eigenvector
// degenerates to a Sweep-like order that is maximally unfair between
// dimensions, while a mixed vector (like the one the paper prints in
// Figure 3d) treats all dimensions alike.
type DegeneracyPolicy int

const (
	// DegeneracyBalanced (default) picks, within the λ₂ eigenspace, the
	// unit vector minimizing the quartic edge objective
	// Σ_{(u,v)∈E} w·(x_u−x_v)⁴. All eigenspace vectors share the same
	// quadratic cost λ₂, so the quartic term is the natural tie-breaker:
	// it spreads the edge differences evenly over the edges, which on
	// grids selects the diagonal mix of the axis eigenvectors and restores
	// the fairness the paper reports (Figure 5b). The choice is
	// deterministic and basis-independent.
	DegeneracyBalanced DegeneracyPolicy = iota
	// DegeneracyRaw keeps whatever single eigenvector the solver returns —
	// the literal reading of the paper's Figure 2. Exposed for the
	// ablation benchmarks.
	DegeneracyRaw
)

// degeneracyRelTol is the relative eigenvalue gap below which two
// eigenvalues are treated as one degenerate cluster.
const degeneracyRelTol = 1e-6

// maxProbedMultiplicity caps how many eigenpairs the degeneracy probe
// computes; hypercubic grids in d dimensions have multiplicity d, so 8
// covers every practical case.
const maxProbedMultiplicity = 8

// multilevelDegenRelTol is the relative eigenvalue slack of the multilevel
// path's lightweight degeneracy probe. It is much looser than
// degeneracyRelTol because the probe's Rayleigh quotients come from a few
// inverse-power steps, not a converged eigensolve; mixing in a direction
// whose eigenvalue is within 0.1% of λ₂ changes the relaxation objective by
// at most that factor, while missing a true eigenspace member costs the
// axis-aligned unfairness the balanced policy exists to prevent.
const multilevelDegenRelTol = 1e-3

// probeIters bounds the inverse-power steps per probed eigenspace member on
// the multilevel path; each step is one CG solve, so the whole probe stays
// within a small multiple of the Fiedler solve itself. A random start needs
// roughly this many λ₂/λ₄ contractions before its Rayleigh quotient is
// within multilevelDegenRelTol of λ₂ on a degenerate grid.
const probeIters = 12

// resolveFiedler returns the Fiedler value and the eigenspace-resolved
// assignment vector for a connected graph, honoring the policy.
//
// When the solver options resolve to the multilevel method (explicitly, or
// via MethodAuto on a graph at or above MultilevelCutoff), the coarsen-
// prolong-refine driver runs instead of the single-level solvers. The
// balanced policy is still honored, but through a cheaper eigenspace probe:
// instead of SmallestK (several extra full eigensolves — exactly what the
// multilevel path exists to avoid), a handful of deflated inverse-power
// steps recover additional λ₂-eigenspace members, and the existing quartic
// minimizer mixes them. On a square grid the raw multilevel vector is often
// axis-aligned (Sweep-like, maximally unfair between dimensions); the probe
// restores the balanced diagonal mix at roughly 2x the solve cost.
func resolveFiedler(g *graph.Graph, opt Options) (float64, []float64, error) {
	if opt.Solver.Resolve(g.N(), true) == eigen.MethodMultilevel {
		// Assembled once and shared with the solver and the probe: CSR
		// assembly sorts every nonzero, which is not free at this scale.
		lap := g.Laplacian()
		fr, err := eigen.MultilevelFiedlerWithLaplacian(g, lap, opt.Solver)
		if err != nil {
			return 0, nil, err
		}
		if opt.Degeneracy == DegeneracyRaw {
			return fr.Value, fr.Vector, nil
		}
		basis := multilevelEigenspace(g, lap, fr, opt)
		if len(basis) <= 1 {
			return fr.Value, fr.Vector, nil
		}
		return fr.Value, minimizeQuartic(g, basis, opt.Solver.Seed), nil
	}
	op := eigen.CSROperator{M: g.Laplacian(), Workers: opt.Solver.Parallelism}
	fr, err := eigen.Fiedler(op, opt.Solver)
	if err != nil {
		return 0, nil, err
	}
	if opt.Degeneracy == DegeneracyRaw {
		return fr.Value, fr.Vector, nil
	}
	basis, err := fiedlerEigenspace(op, g.N(), fr.Value, opt)
	if err != nil || len(basis) <= 1 {
		// Simple eigenvalue (or probe failed — fall back to the plain
		// vector, which is always a valid answer).
		return fr.Value, fr.Vector, nil
	}
	v := minimizeQuartic(g, basis, opt.Solver.Seed)
	return fr.Value, v, nil
}

// multilevelEigenspace grows an orthonormal basis of the (near-)degenerate
// λ₂ eigenspace around a multilevel Fiedler vector, using cheap inverse-
// power probes (eigen.EigenspaceProbe) instead of full eigensolves. Probing
// stops at the first member whose Rayleigh quotient separates from λ₂, on
// any probe error (the Fiedler vector alone is always a valid answer), or
// at the multiplicity cap.
func multilevelEigenspace(g *graph.Graph, lap *la.CSR, fr eigen.Result, opt Options) [][]float64 {
	op := eigen.CSROperator{M: lap, Workers: opt.Solver.Parallelism}
	basis := [][]float64{fr.Vector}
	deflate := [][]float64{la.UnitOnes(g.N()), fr.Vector}
	limit := fr.Value * (1 + multilevelDegenRelTol)
	popt := opt.Solver
	for len(basis) < maxProbedMultiplicity {
		popt.Seed += 7919 // distinct start per probed member
		v, rq, err := eigen.EigenspaceProbe(op, popt, deflate, probeIters, limit)
		if err != nil || rq > limit {
			break
		}
		basis = append(basis, v)
		deflate = append(deflate, v)
	}
	return basis
}

// fiedlerEigenspace probes for eigenvalues clustered at λ₂ and returns an
// orthonormal basis of the cluster's eigenspace.
func fiedlerEigenspace(op eigen.Operator, n int, lambda2 float64, opt Options) ([][]float64, error) {
	k := 2
	for {
		if k > n-1 {
			k = n - 1
		}
		vals, vecs, err := eigen.SmallestK(op, k, opt.Solver)
		if err != nil {
			return nil, err
		}
		cluster := 1
		for cluster < len(vals) &&
			vals[cluster] <= lambda2+degeneracyRelTol*(1+math.Abs(lambda2)) {
			cluster++
		}
		if cluster < k || k >= n-1 || k >= maxProbedMultiplicity {
			if cluster > maxProbedMultiplicity {
				cluster = maxProbedMultiplicity
			}
			return vecs[:cluster], nil
		}
		k += 2
	}
}

// minimizeQuartic finds the unit vector x = Σ c_j basis_j minimizing
// f(c) = Σ_{(u,v)∈E} w(u,v)·(x_u − x_v)⁴ by projected gradient descent on
// the unit sphere in coefficient space, with deterministic restarts. m is
// tiny (≤ 8), so this is cheap: each evaluation is O(|E|·m).
func minimizeQuartic(g *graph.Graph, basis [][]float64, seed int64) []float64 {
	m := len(basis)
	// Per-edge differences of each basis vector.
	type edgeDiff struct {
		w float64
		d []float64
	}
	var edges []edgeDiff
	g.Edges(func(u, v int, w float64) {
		d := make([]float64, m)
		for j, b := range basis {
			d[j] = b[u] - b[v]
		}
		edges = append(edges, edgeDiff{w: w, d: d})
	})

	objective := func(c []float64) float64 {
		var f float64
		for _, e := range edges {
			var delta float64
			for j := range c {
				delta += c[j] * e.d[j]
			}
			sq := delta * delta
			f += e.w * sq * sq
		}
		return f
	}
	gradient := func(c, out []float64) {
		la.Zero(out)
		for _, e := range edges {
			var delta float64
			for j := range c {
				delta += c[j] * e.d[j]
			}
			coef := 4 * e.w * delta * delta * delta
			for j := range out {
				out[j] += coef * e.d[j]
			}
		}
	}

	normalizeC := func(c []float64) {
		if la.Normalize(c) == 0 {
			c[0] = 1
		}
	}
	descend := func(c []float64) ([]float64, float64) {
		grad := make([]float64, m)
		trial := make([]float64, m)
		f := objective(c)
		step := 0.5
		for it := 0; it < 200 && step > 1e-12; it++ {
			gradient(c, grad)
			// Project the gradient onto the tangent space of the sphere.
			la.Axpy(-la.Dot(grad, c), c, grad)
			gn := la.Norm2(grad)
			if gn < 1e-14*(1+f) {
				break
			}
			la.Copy(trial, c)
			la.Axpy(-step/gn, grad, trial)
			normalizeC(trial)
			if ft := objective(trial); ft < f {
				la.Copy(c, trial)
				f = ft
				step *= 1.2
			} else {
				step *= 0.5
			}
		}
		return c, f
	}

	rng := rand.New(rand.NewSource(seed + 12345))
	var best []float64
	bestF := math.Inf(1)
	starts := [][]float64{make([]float64, m)}
	for j := range starts[0] {
		starts[0][j] = 1 // the all-mix start
	}
	for r := 0; r < 3+m; r++ {
		c := make([]float64, m)
		for j := range c {
			c[j] = rng.NormFloat64()
		}
		starts = append(starts, c)
	}
	for _, c0 := range starts {
		normalizeC(c0)
		c, f := descend(c0)
		if f < bestF {
			bestF = f
			best = append([]float64(nil), c...)
		}
	}
	x := make([]float64, len(basis[0]))
	for j, b := range basis {
		la.Axpy(best[j], b, x)
	}
	la.Normalize(x)
	// Deterministic sign: largest-magnitude entry positive.
	var maxAbs, sign float64 = 0, 1
	for _, v := range x {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
			if v < 0 {
				sign = -1
			} else {
				sign = 1
			}
		}
	}
	if sign < 0 {
		la.Scale(-1, x)
	}
	return x
}
