package core

import (
	"math"
	"testing"

	"github.com/spectral-lpm/spectrallpm/internal/graph"
)

// axisMeanGaps returns the mean 1-D rank gap of horizontally and vertically
// adjacent points of a side x side grid (row-major vertex ids) — the
// fairness quantity of the paper's Figure 5b, computed directly so the test
// does not depend on the order/metrics packages (which import core).
func axisMeanGaps(side int, rank []int) (h, v float64) {
	var hSum, vSum, count float64
	id := func(r, c int) int { return r*side + c }
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if c+1 < side {
				d := rank[id(r, c)] - rank[id(r, c+1)]
				if d < 0 {
					d = -d
				}
				hSum += float64(d)
			}
			if r+1 < side {
				d := rank[id(r, c)] - rank[id(r+1, c)]
				if d < 0 {
					d = -d
				}
				vSum += float64(d)
			}
		}
	}
	count = float64(side * (side - 1))
	return hSum / count, vSum / count
}

// TestMultilevelPathHonorsBalancedDegeneracy pins the regression the
// multilevel dispatch almost introduced: on a square grid (degenerate λ₂)
// the default DegeneracyBalanced policy must still produce an axis-fair
// order when the solver auto-routes to multilevel. The raw multilevel
// Fiedler vector is typically axis-aligned — a Sweep-like order whose mean
// rank gap along one axis is ~side times the other's — and the cheap
// eigenspace probe plus quartic mixing must repair exactly that.
func TestMultilevelPathHonorsBalancedDegeneracy(t *testing.T) {
	const side = 64
	g := graph.GridGraph(graph.MustGrid(side, side), graph.Orthogonal)
	opt := Options{}
	// Force the multilevel path at this (test-friendly) size.
	opt.Solver.MultilevelCutoff = 1024
	res, err := SpectralOrder(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	h, v := axisMeanGaps(side, res.Rank)
	hi, lo := h, v
	if lo > hi {
		hi, lo = lo, hi
	}
	// A sweep-like (axis-aligned) order has ratio ~side (64); the balanced
	// diagonal mix is ~1. Anything below 3 proves the probe fired.
	if ratio := hi / lo; ratio > 3 {
		t.Errorf("balanced multilevel order is axis-unfair: mean gaps h=%.1f v=%.1f (ratio %.1f)", h, v, ratio)
	}
}

// TestMultilevelPathRawPolicySkipsProbe confirms the documented escape
// hatch: DegeneracyRaw keeps the raw multilevel vector (no probe, no
// quartic pass) and still yields a valid spectral order.
func TestMultilevelPathRawPolicySkipsProbe(t *testing.T) {
	const side = 64
	g := graph.GridGraph(graph.MustGrid(side, side), graph.Orthogonal)
	opt := Options{Degeneracy: DegeneracyRaw}
	opt.Solver.MultilevelCutoff = 1024
	res, err := SpectralOrder(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Order) != side*side {
		t.Fatalf("order length %d", len(res.Order))
	}
	seen := make([]bool, side*side)
	for _, u := range res.Order {
		if seen[u] {
			t.Fatal("order is not a permutation")
		}
		seen[u] = true
	}
	// λ₂ must match the closed form regardless of the policy.
	want := 2 * (1 - math.Cos(math.Pi/side))
	if diff := math.Abs(res.Lambda2[0] - want); diff > 1e-6*want {
		t.Errorf("λ₂ = %.8g, want %.8g", res.Lambda2[0], want)
	}
}
