package core

import (
	"fmt"
	"math"
	"math/bits"

	"github.com/spectral-lpm/spectrallpm/internal/graph"
)

// MaxExactMinLAVertices bounds OptimalLinearArrangement's exact search; the
// dynamic program is O(2ⁿ·n) time and O(2ⁿ) space.
const MaxExactMinLAVertices = 20

// OptimalLinearArrangement computes an exact minimum linear arrangement of
// a small graph: the rank permutation minimizing Σ_{(u,v)∈E} w·|rank_u −
// rank_v| (the discrete objective the spectral order relaxes, Juvan–Mohar
// 1992). It uses the classic set dynamic program: placing vertices left to
// right, the incremental cost of a prefix S is the total weight of edges
// crossing the cut (S, V∖S), summed over prefixes. Intended for validating
// spectral orders in tests and experiments; n is capped at
// MaxExactMinLAVertices.
func OptimalLinearArrangement(g *graph.Graph) (rank []int, cost float64, err error) {
	n := g.N()
	if n == 0 {
		return nil, 0, nil
	}
	if n > MaxExactMinLAVertices {
		return nil, 0, fmt.Errorf("core: exact minLA limited to %d vertices, got %d", MaxExactMinLAVertices, n)
	}
	adjW := make([][]float64, n) // adjW[v][u] summed weight
	for v := 0; v < n; v++ {
		adjW[v] = make([]float64, n)
	}
	var totalW float64
	g.Edges(func(u, v int, w float64) {
		adjW[u][v] += w
		adjW[v][u] += w
		totalW += w
	})

	size := 1 << uint(n)
	dp := make([]float64, size)
	choice := make([]int8, size)
	// cut[S] = total weight of edges crossing (S, V∖S); computed
	// incrementally: cut[S ∪ {v}] = cut[S] + deg(v) − 2·w(v, S).
	cut := make([]float64, size)
	deg := make([]float64, n)
	for v := 0; v < n; v++ {
		for u := 0; u < n; u++ {
			deg[v] += adjW[v][u]
		}
	}
	for s := 1; s < size; s++ {
		dp[s] = math.Inf(1)
		choice[s] = -1
	}
	for s := 0; s < size; s++ {
		if math.IsInf(dp[s], 1) {
			continue
		}
		for v := 0; v < n; v++ {
			bit := 1 << uint(v)
			if s&bit != 0 {
				continue
			}
			// w(v, S): edge weight from v into the prefix.
			var wvs float64
			rest := s
			for rest != 0 {
				u := bits.TrailingZeros32(uint32(rest))
				rest &= rest - 1
				wvs += adjW[v][u]
			}
			ns := s | bit
			// cut(S∪{v}) = cut(S) + deg(v) − 2·w(v,S) depends on the set
			// alone, so writing it on any improving path is consistent.
			ncut := cut[s] + deg[v] - 2*wvs
			// The arrangement cost accumulates the crossing weight of
			// every prefix: Σ_{k=1}^{n-1} cut(prefix_k) equals
			// Σ_E w·|rank_u − rank_v|.
			if cand := dp[s] + ncut; cand < dp[ns] {
				dp[ns] = cand
				choice[ns] = int8(v)
				cut[ns] = ncut
			}
		}
	}
	full := size - 1
	rank = make([]int, n)
	s := full
	for pos := n - 1; pos >= 0; pos-- {
		v := int(choice[s])
		if v < 0 {
			return nil, 0, fmt.Errorf("core: minLA reconstruction failed")
		}
		rank[v] = pos
		s &^= 1 << uint(v)
	}
	return rank, dp[full], nil
}

// SpectralOptimalityRatio runs both the spectral order and the exact minLA
// on a small graph and returns spectralCost/optimalCost (≥ 1; 1 means the
// spectral relaxation recovered a true optimum).
func SpectralOptimalityRatio(g *graph.Graph, opt Options) (ratio float64, spectralCost, optimalCost float64, err error) {
	res, err := SpectralOrder(g, opt)
	if err != nil {
		return 0, 0, 0, err
	}
	spectralCost, err = LinearArrangementCost(g, res.Rank)
	if err != nil {
		return 0, 0, 0, err
	}
	_, optimalCost, err = OptimalLinearArrangement(g)
	if err != nil {
		return 0, 0, 0, err
	}
	if optimalCost == 0 {
		if spectralCost == 0 {
			return 1, 0, 0, nil
		}
		return math.Inf(1), spectralCost, 0, nil
	}
	return spectralCost / optimalCost, spectralCost, optimalCost, nil
}
