package core

import "sort"

// The spectral order of step 5 is "the order of the assigned values" — but
// assigned values tie. On the paper's own default construction ties are the
// rule, not the exception: the Fiedler vector of a rectangular grid is
// constant on every slab perpendicular to its longest axis, so whole
// hyperplanes of points share one value. A floating-point eigensolver
// renders those ties as noise at the solver's residual scale, which would
// make the induced order an artifact of the solver method rather than of
// the spectrum. OrderByValues defines the order canonically instead:
//
//  1. Snap: values within snapRelTol of each other (relative to the
//     component's value range) form one tie group — wide enough to absorb
//     solver residuals, narrow enough that genuinely distinct spectral
//     values never merge on supported problem sizes.
//  2. Orient: x and −x are the same eigenvector; the order is computed for
//     the orientation whose LAST tie group does not hold the smallest
//     vertex id of the extreme groups, so the order starts at the
//     low-id end of the spectrum regardless of the solver's sign choice.
//  3. Resolve: a tie group larger than one vertex is ordered by the
//     caller's resolver — the paper's recursive tie-breaking (Spectral LPM
//     re-applied to the subgraph induced by the tied vertices). A group
//     that swallows the whole component falls back to id order, which
//     bounds the recursion.
//
// Both the eigensolver path (SpectralOrder) and the closed-form grid engine
// (internal/analytic) order through this one function, which is what makes
// the two paths comparable rank-for-rank.

// snapRelTol is the relative value gap (scaled by the component's value
// range) below which two Fiedler components are one tie group. It must sit
// well above the eigensolver residual (1e-9, amplified by the eigengap) and
// well below the smallest genuine value gap (≳1e-5 of the range for grids
// up to ~1000 per side).
const snapRelTol = 1e-6

// OrderByValues orders ids ascending by their snapped values, resolving
// multi-member tie groups through resolve (members passed in ascending id
// order) and orienting the whole order deterministically. ids must be
// sorted ascending; vals[i] belongs to ids[i]. It reports whether the
// orientation step reversed the value order, so callers keeping the raw
// vector can negate it and preserve the order-ascends-with-value invariant.
func OrderByValues(ids []int, vals []float64, resolve func(group []int) ([]int, error)) (ordered []int, flipped bool, err error) {
	n := len(ids)
	if n <= 1 {
		return append([]int(nil), ids...), false, nil
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool {
		va, vb := vals[perm[a]], vals[perm[b]]
		if va != vb {
			return va < vb
		}
		return ids[perm[a]] < ids[perm[b]]
	})
	lo, hi := vals[perm[0]], vals[perm[n-1]]
	if hi == lo {
		// A constant assignment carries no order; fall back to id order.
		return append([]int(nil), ids...), false, nil
	}
	tol := snapRelTol * (hi - lo)
	// groups[k] is the half-open [start, end) range of perm holding group k.
	var groups [][2]int
	start := 0
	for i := 1; i < n; i++ {
		if vals[perm[i]]-vals[perm[i-1]] > tol {
			groups = append(groups, [2]int{start, i})
			start = i
		}
	}
	groups = append(groups, [2]int{start, n})
	minID := func(g [2]int) int {
		m := ids[perm[g[0]]]
		for i := g[0] + 1; i < g[1]; i++ {
			if id := ids[perm[i]]; id < m {
				m = id
			}
		}
		return m
	}
	if len(groups) >= 2 && minID(groups[len(groups)-1]) < minID(groups[0]) {
		flipped = true
		for i, j := 0, len(groups)-1; i < j; i, j = i+1, j-1 {
			groups[i], groups[j] = groups[j], groups[i]
		}
	}
	ordered = make([]int, 0, n)
	for _, g := range groups {
		size := g[1] - g[0]
		switch {
		case size == 1:
			ordered = append(ordered, ids[perm[g[0]]])
		case size == n:
			// The whole component snapped into one group (a near-constant
			// assignment): recursion would not terminate, so id order.
			ordered = append(ordered, ids...)
		default:
			members := make([]int, size)
			for i := g[0]; i < g[1]; i++ {
				members[i-g[0]] = ids[perm[i]]
			}
			sort.Ints(members)
			resolved, err := resolve(members)
			if err != nil {
				return nil, false, err
			}
			ordered = append(ordered, resolved...)
		}
	}
	return ordered, flipped, nil
}
