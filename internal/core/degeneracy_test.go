package core

import (
	"math"
	"testing"

	"github.com/spectral-lpm/spectrallpm/internal/graph"
)

// axisAlignment measures how much of the assignment's quadratic energy
// flows through edges of each grid axis: Σ_{edges along axis k} (x_u−x_v)².
func axisAlignment(grid *graph.Grid, g *graph.Graph, x []float64) []float64 {
	d := grid.D()
	energy := make([]float64, d)
	g.Edges(func(u, v int, w float64) {
		cu := grid.Coords(u, nil)
		cv := grid.Coords(v, nil)
		for k := 0; k < d; k++ {
			if cu[k] != cv[k] {
				diff := x[u] - x[v]
				energy[k] += w * diff * diff
				break
			}
		}
	})
	return energy
}

func TestBalancedDegeneracySpreadsEnergyAcrossAxes(t *testing.T) {
	// On an even square grid λ₂ has multiplicity 2. The balanced policy
	// must mix both axis eigenvectors: each axis carries a substantial
	// share of the λ₂ energy (an axis-pure vector would put ~100% on one
	// axis).
	grid := graph.MustGrid(8, 8)
	g := graph.GridGraph(grid, graph.Orthogonal)
	res, err := SpectralOrder(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	energy := axisAlignment(grid, g, res.Fiedler)
	total := energy[0] + energy[1]
	if total <= 0 {
		t.Fatal("no energy")
	}
	for k, e := range energy {
		if e/total < 0.25 {
			t.Errorf("axis %d carries only %.1f%% of λ₂ energy: %v", k, 100*e/total, energy)
		}
	}
	// The result must still be an optimal Theorem-1 solution.
	cost, _ := ArrangementCost(g, res.Fiedler)
	if math.Abs(cost-res.Lambda2[0]) > 1e-5 {
		t.Errorf("balanced vector cost %v != λ₂ %v", cost, res.Lambda2[0])
	}
}

func TestBalancedDegeneracy3DGrid(t *testing.T) {
	grid := graph.MustGrid(5, 5, 5)
	g := graph.GridGraph(grid, graph.Orthogonal)
	res, err := SpectralOrder(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	energy := axisAlignment(grid, g, res.Fiedler)
	total := energy[0] + energy[1] + energy[2]
	for k, e := range energy {
		if e/total < 0.15 {
			t.Errorf("axis %d carries only %.1f%% of λ₂ energy", k, 100*e/total)
		}
	}
	cost, _ := ArrangementCost(g, res.Fiedler)
	if math.Abs(cost-res.Lambda2[0]) > 1e-5 {
		t.Errorf("cost %v != λ₂ %v", cost, res.Lambda2[0])
	}
}

func TestRawDegeneracyStillOptimal(t *testing.T) {
	// The raw policy must also return an optimal (if arbitrary) vector.
	g := graph.GridGraph(graph.MustGrid(6, 6), graph.Orthogonal)
	res, err := SpectralOrder(g, Options{Degeneracy: DegeneracyRaw})
	if err != nil {
		t.Fatal(err)
	}
	cost, _ := ArrangementCost(g, res.Fiedler)
	if math.Abs(cost-res.Lambda2[0]) > 1e-5 {
		t.Errorf("raw vector cost %v != λ₂ %v", cost, res.Lambda2[0])
	}
}

func TestDegeneracyPoliciesAgreeOnSimpleEigenvalue(t *testing.T) {
	// A path has a simple λ₂: both policies must give the same order.
	g := graph.Path(15)
	balanced, err := SpectralOrder(g, Options{Degeneracy: DegeneracyBalanced})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := SpectralOrder(g, Options{Degeneracy: DegeneracyRaw})
	if err != nil {
		t.Fatal(err)
	}
	for i := range balanced.Order {
		if balanced.Order[i] != raw.Order[i] {
			t.Fatalf("orders differ on simple spectrum: %v vs %v", balanced.Order, raw.Order)
		}
	}
}

func TestBalancedDegeneracyDeterministic(t *testing.T) {
	g := graph.GridGraph(graph.MustGrid(6, 6), graph.Orthogonal)
	a, err := SpectralOrder(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SpectralOrder(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Fiedler {
		if a.Fiedler[i] != b.Fiedler[i] {
			t.Fatal("balanced resolution not deterministic")
		}
	}
}

func TestBalancedBeatsRawOnQuarticObjective(t *testing.T) {
	// By construction the balanced vector's quartic edge objective is no
	// worse than the raw solver vector's.
	g := graph.GridGraph(graph.MustGrid(8, 8), graph.Orthogonal)
	quartic := func(x []float64) float64 {
		var f float64
		g.Edges(func(u, v int, w float64) {
			d := x[u] - x[v]
			f += w * d * d * d * d
		})
		return f
	}
	bal, err := SpectralOrder(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := SpectralOrder(g, Options{Degeneracy: DegeneracyRaw})
	if err != nil {
		t.Fatal(err)
	}
	if quartic(bal.Fiedler) > quartic(raw.Fiedler)+1e-9 {
		t.Errorf("balanced quartic %v exceeds raw %v", quartic(bal.Fiedler), quartic(raw.Fiedler))
	}
}
