package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/spectral-lpm/spectrallpm/internal/eigen"
	"github.com/spectral-lpm/spectrallpm/internal/graph"
)

// paperFigure3X is the Fiedler vector the paper prints for its 3x3 worked
// example (Figure 3d), vertices row-major.
var paperFigure3X = []float64{-0.01, -0.29, -0.57, 0.28, 0, -0.28, 0.57, 0.29, 0.01}

// paperFigure3S is the paper's resulting linear order S.
var paperFigure3S = []int{2, 1, 5, 0, 4, 8, 3, 7, 6}

func grid3x3() *graph.Graph {
	return graph.GridGraph(graph.MustGrid(3, 3), graph.Orthogonal)
}

func TestFigure3Lambda2IsOne(t *testing.T) {
	// Paper Figure 3d: λ₂ = 1 for the 3x3 four-connected grid.
	res, err := SpectralOrder(grid3x3(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Lambda2) != 1 {
		t.Fatalf("components = %d, want 1", res.Components)
	}
	if math.Abs(res.Lambda2[0]-1) > 1e-7 {
		t.Errorf("λ₂ = %v, want 1 (paper Figure 3)", res.Lambda2[0])
	}
}

func TestFigure3PaperVectorIsOptimal(t *testing.T) {
	// The paper's printed X must satisfy the Theorem 1/2 optimality
	// conditions against OUR Laplacian and objective: X ⊥ 1 and
	// Rayleigh quotient exactly λ₂ = 1 (the rounding in the paper's
	// digits happens to cancel: ‖X‖² = 0.975 and cost = 0.975).
	g := grid3x3()
	var sum, norm2 float64
	for _, v := range paperFigure3X {
		sum += v
		norm2 += v * v
	}
	if math.Abs(sum) > 1e-12 {
		t.Errorf("paper X not orthogonal to ones: sum = %v", sum)
	}
	cost, err := ArrangementCost(g, paperFigure3X)
	if err != nil {
		t.Fatal(err)
	}
	if rq := cost / norm2; math.Abs(rq-1) > 1e-9 {
		t.Errorf("paper X Rayleigh quotient = %v, want 1", rq)
	}
}

func TestFigure3PaperOrderIsSortOfPaperVector(t *testing.T) {
	// Step 5 of the algorithm: S is the ascending order of the x_i. The
	// paper's S must equal the argsort of the paper's X.
	idx := make([]int, len(paperFigure3X))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return paperFigure3X[idx[a]] < paperFigure3X[idx[b]] })
	for i := range idx {
		if idx[i] != paperFigure3S[i] {
			t.Fatalf("argsort of paper X = %v, paper S = %v", idx, paperFigure3S)
		}
	}
}

func TestFigure3OurOrderIsEquallyOptimal(t *testing.T) {
	// λ₂ of the 3x3 grid has multiplicity 2, so our Fiedler vector may
	// differ from the paper's, but it must be equally optimal: unit norm,
	// ⊥ 1, ArrangementCost = λ₂ = 1.
	g := grid3x3()
	res, err := SpectralOrder(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sum, norm2 float64
	for _, v := range res.Fiedler {
		sum += v
		norm2 += v * v
	}
	if math.Abs(sum) > 1e-6 {
		t.Errorf("Fiedler assignment not ⊥ ones: %v", sum)
	}
	if math.Abs(norm2-1) > 1e-6 {
		t.Errorf("Fiedler assignment norm² = %v", norm2)
	}
	cost, _ := ArrangementCost(g, res.Fiedler)
	if math.Abs(cost-1) > 1e-6 {
		t.Errorf("ArrangementCost = %v, want λ₂ = 1", cost)
	}
	checkPermutation(t, res.Order, 9)
}

func TestSpectralOrderPathIsSequential(t *testing.T) {
	// On a path graph the Fiedler vector is strictly monotone, so the
	// spectral order must be 0,1,...,n-1 or its reverse — the provably
	// optimal linear arrangement of a path.
	const n = 20
	res, err := SpectralOrder(graph.Path(n), Options{})
	if err != nil {
		t.Fatal(err)
	}
	forward, backward := true, true
	for i := 0; i < n; i++ {
		if res.Order[i] != i {
			forward = false
		}
		if res.Order[i] != n-1-i {
			backward = false
		}
	}
	if !forward && !backward {
		t.Errorf("path order = %v", res.Order)
	}
	cost, _ := LinearArrangementCost(graph.Path(n), res.Rank)
	if cost != float64(n-1) {
		t.Errorf("path minLA cost = %v, want %v", cost, n-1)
	}
}

func TestSpectralOrderEmptyGraph(t *testing.T) {
	res, err := SpectralOrder(graph.New(0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Order) != 0 || res.Components != 0 {
		t.Errorf("empty graph result %+v", res)
	}
}

func TestSpectralOrderSingletonAndPairComponents(t *testing.T) {
	// Graph: isolated vertex 0, pair (1,2), triangle (3,4,5).
	g := graph.New(6)
	mustAdd(t, g, 1, 2, 1)
	mustAdd(t, g, 3, 4, 1)
	mustAdd(t, g, 4, 5, 1)
	mustAdd(t, g, 3, 5, 1)
	res, err := SpectralOrder(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Components != 3 {
		t.Fatalf("components = %d, want 3", res.Components)
	}
	checkPermutation(t, res.Order, 6)
	// Component ranges must be contiguous: {0}, {1,2}, {3,4,5}.
	if res.Order[0] != 0 {
		t.Errorf("singleton not first: %v", res.Order)
	}
	if !(sameSet(res.Order[1:3], []int{1, 2}) && sameSet(res.Order[3:], []int{3, 4, 5})) {
		t.Errorf("components interleaved: %v", res.Order)
	}
	// K₂ λ₂ = 2, K₃ λ₂ = 3.
	if res.Lambda2[1] != 2 {
		t.Errorf("pair λ₂ = %v, want 2", res.Lambda2[1])
	}
	if math.Abs(res.Lambda2[2]-3) > 1e-7 {
		t.Errorf("triangle λ₂ = %v, want 3", res.Lambda2[2])
	}
}

func TestSpectralOrderAffinityEdgePullsPointsTogether(t *testing.T) {
	// Paper §4: adding an edge (or weight) between p and q forces them
	// nearby in the 1-D order. Compare the rank gap of the endpoints of a
	// long path with and without a strong affinity edge.
	const n = 30
	base := graph.Path(n)
	resBase, err := SpectralOrder(base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gapBase := absInt(resBase.Rank[0] - resBase.Rank[n-1])

	withAff := graph.Path(n)
	mustAdd(t, withAff, 0, n-1, 50)
	resAff, err := SpectralOrder(withAff, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gapAff := absInt(resAff.Rank[0] - resAff.Rank[n-1])
	if gapAff >= gapBase {
		t.Errorf("affinity edge did not reduce rank gap: base %d, with affinity %d", gapBase, gapAff)
	}
}

func TestSpectralOrderConnectivityVariants(t *testing.T) {
	// Paper Figure 4: 4-connectivity and 8-connectivity give (possibly)
	// different spectral orders; both must be valid permutations and both
	// λ₂ values positive.
	grid := graph.MustGrid(4, 4)
	res4, err := SpectralOrder(graph.GridGraph(grid, graph.Orthogonal), Options{})
	if err != nil {
		t.Fatal(err)
	}
	res8, err := SpectralOrder(graph.GridGraph(grid, graph.Diagonal), Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkPermutation(t, res4.Order, 16)
	checkPermutation(t, res8.Order, 16)
	if res4.Lambda2[0] <= 0 || res8.Lambda2[0] <= 0 {
		t.Error("λ₂ not positive")
	}
	// Denser connectivity means higher algebraic connectivity.
	if res8.Lambda2[0] <= res4.Lambda2[0] {
		t.Errorf("8-conn λ₂ %v should exceed 4-conn λ₂ %v", res8.Lambda2[0], res4.Lambda2[0])
	}
}

func TestSpectralOrderDeterministic(t *testing.T) {
	g := graph.GridGraph(graph.MustGrid(6, 6), graph.Orthogonal)
	a, err := SpectralOrder(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SpectralOrder(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Order {
		if a.Order[i] != b.Order[i] {
			t.Fatal("non-deterministic order")
		}
	}
}

func TestSpectralOrderLargeGridInversePower(t *testing.T) {
	// Force the sparse production path on a grid large enough to skip the
	// dense cutoff.
	g := graph.GridGraph(graph.MustGrid(20, 20), graph.Orthogonal)
	res, err := SpectralOrder(g, Options{Solver: eigen.Options{Method: eigen.MethodInversePower, Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	checkPermutation(t, res.Order, 400)
	want := 4 * math.Pow(math.Sin(math.Pi/40), 2)
	if math.Abs(res.Lambda2[0]-want) > 1e-6 {
		t.Errorf("20x20 λ₂ = %v, want %v", res.Lambda2[0], want)
	}
}

func TestCostFunctionsValidate(t *testing.T) {
	g := graph.Path(3)
	if _, err := ArrangementCost(g, []float64{1}); err == nil {
		t.Error("short assignment accepted")
	}
	if _, err := LinearArrangementCost(g, []int{1}); err == nil {
		t.Error("short rank accepted")
	}
	c, err := ArrangementCost(g, []float64{0, 1, 3})
	if err != nil || c != 1+4 {
		t.Errorf("ArrangementCost = %v err %v", c, err)
	}
	l, err := LinearArrangementCost(g, []int{0, 1, 3})
	if err != nil || l != 1+2 {
		t.Errorf("LinearArrangementCost = %v err %v", l, err)
	}
}

func TestBisectPath(t *testing.T) {
	left, right, err := Bisect(graph.Path(10), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 5 || len(right) != 5 {
		t.Fatalf("halves %v | %v", left, right)
	}
	// The spectral bisection of a path cuts it in the middle.
	lo, hi := left, right
	if lo[0] != 0 {
		lo, hi = right, left
	}
	for i := 0; i < 5; i++ {
		if lo[i] != i || hi[i] != i+5 {
			t.Fatalf("bisection not contiguous: %v | %v", left, right)
		}
	}
}

func TestBisectGridCutsAcross(t *testing.T) {
	// Spectral bisection of an even grid yields two connected halves of
	// equal size (the median-cut optimality result the paper cites).
	grid := graph.MustGrid(6, 6)
	g := graph.GridGraph(grid, graph.Orthogonal)
	left, right, err := Bisect(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 18 || len(right) != 18 {
		t.Fatalf("halves sized %d, %d", len(left), len(right))
	}
	for _, half := range [][]int{left, right} {
		sub, _, err := g.Subgraph(half)
		if err != nil {
			t.Fatal(err)
		}
		if !sub.IsConnected() {
			t.Errorf("bisection half %v not connected", half)
		}
	}
}

// Property: for random connected graphs the spectral order is a permutation
// and the Fiedler assignment is a unit vector ⊥ ones with cost λ₂.
func TestSpectralOrderInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		g := graph.Path(n) // ensure connectivity, then add chords
		for k := 0; k < n/2; k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				_ = g.AddEdge(u, v, 0.5+2*rng.Float64())
			}
		}
		res, err := SpectralOrder(g, Options{Solver: eigen.Options{Seed: seed}})
		if err != nil {
			return false
		}
		seen := make([]bool, n)
		for _, v := range res.Order {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		for v, r := range res.Rank {
			if res.Order[r] != v {
				return false
			}
		}
		cost, _ := ArrangementCost(g, res.Fiedler)
		return math.Abs(cost-res.Lambda2[0]) < 1e-5*(1+res.Lambda2[0])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func checkPermutation(t *testing.T, order []int, n int) {
	t.Helper()
	if len(order) != n {
		t.Fatalf("order length %d, want %d", len(order), n)
	}
	seen := make([]bool, n)
	for _, v := range order {
		if v < 0 || v >= n || seen[v] {
			t.Fatalf("order %v is not a permutation", order)
		}
		seen[v] = true
	}
}

func sameSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]int(nil), a...)
	bs := append([]int(nil), b...)
	sort.Ints(as)
	sort.Ints(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func mustAdd(t *testing.T, g *graph.Graph, u, v int, w float64) {
	t.Helper()
	if err := g.AddEdge(u, v, w); err != nil {
		t.Fatal(err)
	}
}
