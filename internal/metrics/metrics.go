// Package metrics measures locality preservation of a mapping, defining the
// quantities plotted in the paper's evaluation:
//
//   - Figure 5a: for point pairs at a given multi-dimensional Manhattan
//     distance, the worst-case 1-D rank distance (PairwiseByManhattan).
//   - Figure 5b: the same quantity restricted to pairs separated along a
//     single axis, exposing per-dimension fairness (AxisGap).
//   - Figure 6a: for axis-aligned range queries, the worst-case difference
//     between the largest and smallest rank inside the query (RangeSpan).
//   - Figure 6b: the standard deviation of that difference over all query
//     positions (RangeSpan.StdDev).
//
// Plus the cluster count of Moon et al. (IEEE TKDE 2001), the classic
// measure of how many contiguous runs of the 1-D order a query touches.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"github.com/spectral-lpm/spectrallpm/internal/errs"

	"github.com/spectral-lpm/spectrallpm/internal/order"
)

// PairStats aggregates 1-D rank distances of all point pairs, bucketed by
// their multi-dimensional Manhattan distance. Index 0 corresponds to
// distance 1 (distance-0 pairs do not exist).
type PairStats struct {
	// MaxDistance is the largest Manhattan distance with any pair.
	MaxDistance int
	// MaxGap[d-1] is the largest |rank(p) − rank(q)| over pairs at
	// Manhattan distance d.
	MaxGap []int
	// SumGap[d-1] accumulates the rank gaps at distance d (for means).
	SumGap []float64
	// Count[d-1] is the number of pairs at distance d.
	Count []int64
}

// MeanGap returns the average rank gap at Manhattan distance d, or 0 when
// no pair exists.
func (s *PairStats) MeanGap(d int) float64 {
	if d < 1 || d > s.MaxDistance || s.Count[d-1] == 0 {
		return 0
	}
	return s.SumGap[d-1] / float64(s.Count[d-1])
}

// MaxGapAt returns the worst-case rank gap at Manhattan distance d.
func (s *PairStats) MaxGapAt(d int) int {
	if d < 1 || d > s.MaxDistance {
		return 0
	}
	return s.MaxGap[d-1]
}

// PairwiseByManhattan computes exact pair statistics over all N·(N−1)/2
// point pairs of the mapping's grid. It is O(N²·d) — exact and affordable
// for the grid sizes the experiments use (N up to ~10⁴).
func PairwiseByManhattan(m *order.Mapping) *PairStats {
	g := m.Grid()
	n := g.Size()
	d := g.D()
	maxD := g.MaxManhattan()
	stats := &PairStats{
		MaxDistance: maxD,
		MaxGap:      make([]int, maxD),
		SumGap:      make([]float64, maxD),
		Count:       make([]int64, maxD),
	}
	// Precompute coordinates as a flat int16 array for cache-friendliness.
	coords := make([]int16, n*d)
	buf := make([]int, d)
	for id := 0; id < n; id++ {
		g.Coords(id, buf)
		for k, c := range buf {
			coords[id*d+k] = int16(c)
		}
	}
	ranks := m.Ranks()
	for a := 0; a < n; a++ {
		ca := coords[a*d : a*d+d]
		ra := ranks[a]
		for b := a + 1; b < n; b++ {
			cb := coords[b*d : b*d+d]
			dist := 0
			for k := 0; k < d; k++ {
				dd := int(ca[k]) - int(cb[k])
				if dd < 0 {
					dd = -dd
				}
				dist += dd
			}
			gap := ra - ranks[b]
			if gap < 0 {
				gap = -gap
			}
			idx := dist - 1
			if gap > stats.MaxGap[idx] {
				stats.MaxGap[idx] = gap
			}
			stats.SumGap[idx] += float64(gap)
			stats.Count[idx]++
		}
	}
	return stats
}

// AxisGapStats summarizes the rank gaps of pairs separated by exactly delta
// along a single axis (all other coordinates equal) — the paper's Figure 5b
// fairness measurement.
type AxisGapStats struct {
	Axis  int
	Delta int
	Max   int
	Mean  float64
	Count int64
}

// AxisGap measures pairs (p, q) with q = p + delta·e_axis.
func AxisGap(m *order.Mapping, axis, delta int) (AxisGapStats, error) {
	g := m.Grid()
	dims := g.Dims()
	if axis < 0 || axis >= len(dims) {
		return AxisGapStats{}, fmt.Errorf("metrics: axis %d outside [0,%d): %w", axis, len(dims), errs.ErrDimensionMismatch)
	}
	if delta < 1 || delta >= dims[axis] {
		return AxisGapStats{}, fmt.Errorf("metrics: delta %d outside [1,%d): %w", delta, dims[axis], errs.ErrDimensionMismatch)
	}
	st := AxisGapStats{Axis: axis, Delta: delta}
	coords := make([]int, len(dims))
	var sum float64
	for id := 0; id < g.Size(); id++ {
		g.Coords(id, coords)
		if coords[axis]+delta >= dims[axis] {
			continue
		}
		coords[axis] += delta
		other := g.ID(coords)
		coords[axis] -= delta
		gap := m.Rank(id) - m.Rank(other)
		if gap < 0 {
			gap = -gap
		}
		if gap > st.Max {
			st.Max = gap
		}
		sum += float64(gap)
		st.Count++
	}
	if st.Count > 0 {
		st.Mean = sum / float64(st.Count)
	}
	return st, nil
}

// SpanStats summarizes, over all positions of an axis-aligned query box,
// the span = (max rank − min rank) of the points inside the box. Keeping
// the span small allows answering the query with one short sequential scan
// of the 1-D order (paper §5).
type SpanStats struct {
	// QueryDims is the box shape measured.
	QueryDims []int
	// Queries is the number of box positions evaluated.
	Queries int64
	// Max and Min are the extreme spans over all positions.
	Max, Min int
	// Mean and StdDev summarize the span distribution (Figure 6b plots
	// the standard deviation).
	Mean, StdDev float64
}

// RangeSpan slides a qdims-shaped box over every position of the grid and
// measures the rank span inside each box.
func RangeSpan(m *order.Mapping, qdims []int) (SpanStats, error) {
	g := m.Grid()
	dims := g.Dims()
	if len(qdims) != len(dims) {
		return SpanStats{}, fmt.Errorf("metrics: query arity %d, grid %d: %w", len(qdims), len(dims), errs.ErrDimensionMismatch)
	}
	for i, q := range qdims {
		if q < 1 || q > dims[i] {
			return SpanStats{}, fmt.Errorf("metrics: query side %d outside [1,%d] in dim %d: %w", q, dims[i], i, errs.ErrDimensionMismatch)
		}
	}
	st := SpanStats{QueryDims: append([]int(nil), qdims...), Min: math.MaxInt}
	var sum, sumSq float64
	forEachQueryPosition(dims, qdims, func(start []int) {
		span := spanInBox(m, start, qdims)
		if span > st.Max {
			st.Max = span
		}
		if span < st.Min {
			st.Min = span
		}
		sum += float64(span)
		sumSq += float64(span) * float64(span)
		st.Queries++
	})
	if st.Queries > 0 {
		st.Mean = sum / float64(st.Queries)
		variance := sumSq/float64(st.Queries) - st.Mean*st.Mean
		if variance > 0 {
			st.StdDev = math.Sqrt(variance)
		}
	} else {
		st.Min = 0
	}
	return st, nil
}

// spanInBox returns max rank − min rank over the box cells.
func spanInBox(m *order.Mapping, start, qdims []int) int {
	g := m.Grid()
	lo, hi := math.MaxInt, -1
	cell := make([]int, len(start))
	copy(cell, start)
	for {
		r := m.Rank(g.ID(cell))
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
		if !boxOdometer(cell, start, qdims) {
			break
		}
	}
	return hi - lo
}

// ClusterStats summarizes the number of contiguous 1-D runs (clusters) the
// points of a query box occupy — Moon et al.'s clustering metric. Each
// cluster beyond the first costs a disk seek.
type ClusterStats struct {
	QueryDims []int
	Queries   int64
	Max       int
	Mean      float64
}

// RangeClusters slides a qdims-shaped box over every grid position and
// counts, for each, the contiguous rank runs inside the box.
func RangeClusters(m *order.Mapping, qdims []int) (ClusterStats, error) {
	g := m.Grid()
	dims := g.Dims()
	if len(qdims) != len(dims) {
		return ClusterStats{}, fmt.Errorf("metrics: query arity %d, grid %d: %w", len(qdims), len(dims), errs.ErrDimensionMismatch)
	}
	boxSize := 1
	for i, q := range qdims {
		if q < 1 || q > dims[i] {
			return ClusterStats{}, fmt.Errorf("metrics: query side %d outside [1,%d] in dim %d: %w", q, dims[i], i, errs.ErrDimensionMismatch)
		}
		boxSize *= q
	}
	st := ClusterStats{QueryDims: append([]int(nil), qdims...)}
	ranks := make([]int, 0, boxSize)
	cell := make([]int, len(dims))
	var sum float64
	forEachQueryPosition(dims, qdims, func(start []int) {
		ranks = ranks[:0]
		copy(cell, start)
		for {
			ranks = append(ranks, m.Rank(g.ID(cell)))
			if !boxOdometer(cell, start, qdims) {
				break
			}
		}
		sort.Ints(ranks)
		clusters := 1
		for i := 1; i < len(ranks); i++ {
			if ranks[i] != ranks[i-1]+1 {
				clusters++
			}
		}
		if clusters > st.Max {
			st.Max = clusters
		}
		sum += float64(clusters)
		st.Queries++
	})
	if st.Queries > 0 {
		st.Mean = sum / float64(st.Queries)
	}
	return st, nil
}

// forEachQueryPosition calls fn with every valid start position for a
// qdims-shaped box inside dims. The slice passed to fn is reused.
func forEachQueryPosition(dims, qdims []int, fn func(start []int)) {
	start := make([]int, len(dims))
	for {
		fn(start)
		// Odometer over start positions, bounded by dims-qdims.
		i := len(start) - 1
		for ; i >= 0; i-- {
			start[i]++
			if start[i] <= dims[i]-qdims[i] {
				break
			}
			start[i] = 0
		}
		if i < 0 {
			return
		}
	}
}

// boxOdometer advances cell within the box anchored at start; returns false
// after the last cell.
func boxOdometer(cell, start, qdims []int) bool {
	for i := len(cell) - 1; i >= 0; i-- {
		cell[i]++
		if cell[i] < start[i]+qdims[i] {
			return true
		}
		cell[i] = start[i]
	}
	return false
}
