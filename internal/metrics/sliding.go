package metrics

import (
	"fmt"
	"math"

	"github.com/spectral-lpm/spectrallpm/internal/order"
)

// RangeSpanFast computes exactly the same statistics as RangeSpan but in
// O(N·d) per shape instead of O(positions·volume), using separable
// monotonic-deque sliding-window minima/maxima. It makes the partial-query
// populations of the paper's Figure 6 affordable.
func RangeSpanFast(m *order.Mapping, qdims []int) (SpanStats, error) {
	g := m.Grid()
	dims := g.Dims()
	if len(qdims) != len(dims) {
		return SpanStats{}, fmt.Errorf("metrics: query arity %d, grid %d", len(qdims), len(dims))
	}
	for i, q := range qdims {
		if q < 1 || q > dims[i] {
			return SpanStats{}, fmt.Errorf("metrics: query side %d outside [1,%d] in dim %d", q, dims[i], i)
		}
	}
	spans := slidingSpans(m, qdims)
	st := SpanStats{QueryDims: append([]int(nil), qdims...), Min: math.MaxInt}
	var sum, sumSq float64
	for _, sp := range spans {
		if sp > st.Max {
			st.Max = sp
		}
		if sp < st.Min {
			st.Min = sp
		}
		sum += float64(sp)
		sumSq += float64(sp) * float64(sp)
		st.Queries++
	}
	if st.Queries > 0 {
		st.Mean = sum / float64(st.Queries)
		variance := sumSq/float64(st.Queries) - st.Mean*st.Mean
		if variance > 0 {
			st.StdDev = math.Sqrt(variance)
		}
	} else {
		st.Min = 0
	}
	return st, nil
}

// slidingSpans returns (max−min rank) for every position of a qdims-shaped
// box, as a flat row-major array over the position space
// (dims[i]−qdims[i]+1 per dimension).
func slidingSpans(m *order.Mapping, qdims []int) []int {
	g := m.Grid()
	dims := append([]int(nil), g.Dims()...)
	n := g.Size()
	mins := make([]int, n)
	maxs := make([]int, n)
	ranks := m.Ranks()
	copy(mins, ranks)
	copy(maxs, ranks)
	for axis := range dims {
		if qdims[axis] == 1 {
			continue
		}
		mins, _ = slideAxis(mins, dims, axis, qdims[axis], true)
		maxs, dims = slideAxis(maxs, dims, axis, qdims[axis], false)
	}
	out := make([]int, len(mins))
	for i := range out {
		out[i] = maxs[i] - mins[i]
	}
	return out
}

// slideAxis applies a 1-D sliding-window min (useMin) or max along the
// given axis of a row-major array, returning the shrunk array and its new
// dimensions. Classic monotonic-deque algorithm, O(len(data)).
func slideAxis(data []int, dims []int, axis, window int, useMin bool) ([]int, []int) {
	outDims := append([]int(nil), dims...)
	outDims[axis] = dims[axis] - window + 1

	// Row-major strides of the input.
	stride := make([]int, len(dims))
	s := 1
	for i := len(dims) - 1; i >= 0; i-- {
		stride[i] = s
		s *= dims[i]
	}
	outStride := make([]int, len(outDims))
	s = 1
	for i := len(outDims) - 1; i >= 0; i-- {
		outStride[i] = s
		s *= outDims[i]
	}
	out := make([]int, s)

	// Enumerate all lines along `axis`: iterate over every combination of
	// the other coordinates.
	lineLen := dims[axis]
	outLen := outDims[axis]
	idx := make([]int, len(dims)) // other-coordinate odometer; idx[axis] stays 0
	deque := make([]int, 0, window)
	values := make([]int, lineLen)
	better := func(a, b int) bool {
		if useMin {
			return a <= b
		}
		return a >= b
	}
	for {
		base, outBase := 0, 0
		for i, c := range idx {
			base += c * stride[i]
			outBase += c * outStride[i]
		}
		// Load the line, run the deque.
		for k := 0; k < lineLen; k++ {
			values[k] = data[base+k*stride[axis]]
		}
		deque = deque[:0]
		for k := 0; k < lineLen; k++ {
			for len(deque) > 0 && better(values[k], values[deque[len(deque)-1]]) {
				deque = deque[:len(deque)-1]
			}
			deque = append(deque, k)
			if deque[0] <= k-window {
				deque = deque[1:]
			}
			if k >= window-1 {
				out[outBase+(k-window+1)*outStride[axis]] = values[deque[0]]
			}
		}
		// Advance the odometer over the non-axis coordinates.
		i := len(dims) - 1
		for ; i >= 0; i-- {
			if i == axis {
				continue
			}
			idx[i]++
			if idx[i] < dims[i] {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			break
		}
	}
	_ = outLen
	return out, outDims
}

// PartialSpanStats aggregates the span statistic over the paper's Figure 6
// query population: all *partial* range queries of approximately a target
// volume — every shape (l_1, ..., l_d) with 1 ≤ l_i ≤ side (l_i = side
// leaving dimension i unconstrained) whose volume falls within the
// tolerance band, at every position.
type PartialSpanStats struct {
	// TargetFraction is the requested size as a fraction of the space.
	TargetFraction float64
	// Shapes is the number of query shapes in the band.
	Shapes int
	// Queries counts (shape, position) pairs evaluated.
	Queries int64
	// Max, Mean, StdDev summarize the span over the whole population.
	Max    int
	Mean   float64
	StdDev float64
}

// PartialRangeSpan evaluates the partial-query population for a target
// volume fraction. tolFactor bounds the band: volumes within
// [target/tolFactor, target*tolFactor] qualify (√2 is a reasonable
// default; pass 0 to use it). It errors when no shape falls in the band.
func PartialRangeSpan(m *order.Mapping, fraction, tolFactor float64) (PartialSpanStats, error) {
	if fraction <= 0 || fraction > 1 {
		return PartialSpanStats{}, fmt.Errorf("metrics: fraction %v outside (0,1]", fraction)
	}
	if tolFactor == 0 {
		tolFactor = math.Sqrt2
	}
	if tolFactor < 1 {
		return PartialSpanStats{}, fmt.Errorf("metrics: tolerance factor %v < 1", tolFactor)
	}
	g := m.Grid()
	dims := g.Dims()
	target := fraction * float64(g.Size())
	lo := target / tolFactor
	hi := target * tolFactor

	st := PartialSpanStats{TargetFraction: fraction}
	var sum, sumSq float64
	shape := make([]int, len(dims))
	var rec func(i int, vol float64) error
	rec = func(i int, vol float64) error {
		if vol > hi {
			return nil // volume only grows with more dimensions
		}
		if i == len(dims) {
			if vol < lo {
				return nil
			}
			spans := slidingSpans(m, shape)
			st.Shapes++
			for _, sp := range spans {
				if sp > st.Max {
					st.Max = sp
				}
				sum += float64(sp)
				sumSq += float64(sp) * float64(sp)
				st.Queries++
			}
			return nil
		}
		for l := 1; l <= dims[i]; l++ {
			shape[i] = l
			if err := rec(i+1, vol*float64(l)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0, 1); err != nil {
		return PartialSpanStats{}, err
	}
	if st.Shapes == 0 {
		return PartialSpanStats{}, fmt.Errorf("metrics: no query shape has volume within [%.3g, %.3g]", lo, hi)
	}
	st.Mean = sum / float64(st.Queries)
	variance := sumSq/float64(st.Queries) - st.Mean*st.Mean
	if variance > 0 {
		st.StdDev = math.Sqrt(variance)
	}
	return st, nil
}
