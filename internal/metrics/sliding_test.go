package metrics

import (
	"math"
	"math/rand"
	"testing"

	"github.com/spectral-lpm/spectrallpm/internal/graph"
	"github.com/spectral-lpm/spectrallpm/internal/order"
)

func TestSlideAxis1D(t *testing.T) {
	data := []int{5, 1, 3, 2, 4}
	mins, dims := slideAxis(data, []int{5}, 0, 3, true)
	wantMins := []int{1, 1, 2}
	if dims[0] != 3 {
		t.Fatalf("out dims = %v", dims)
	}
	for i := range wantMins {
		if mins[i] != wantMins[i] {
			t.Fatalf("mins = %v, want %v", mins, wantMins)
		}
	}
	maxs, _ := slideAxis(data, []int{5}, 0, 2, false)
	wantMaxs := []int{5, 3, 3, 4}
	for i := range wantMaxs {
		if maxs[i] != wantMaxs[i] {
			t.Fatalf("maxs = %v, want %v", maxs, wantMaxs)
		}
	}
}

func TestSlideAxis2D(t *testing.T) {
	// 2x3 array row-major: [[1,2,3],[4,5,6]]; window 2 along axis 0.
	data := []int{1, 2, 3, 4, 5, 6}
	mins, dims := slideAxis(data, []int{2, 3}, 0, 2, true)
	if dims[0] != 1 || dims[1] != 3 {
		t.Fatalf("dims = %v", dims)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if mins[i] != want[i] {
			t.Fatalf("mins = %v, want %v", mins, want)
		}
	}
	// Window 2 along axis 1: [[min(1,2),min(2,3)],[min(4,5),min(5,6)]].
	mins, dims = slideAxis(data, []int{2, 3}, 1, 2, true)
	if dims[0] != 2 || dims[1] != 2 {
		t.Fatalf("dims = %v", dims)
	}
	want = []int{1, 2, 4, 5}
	for i := range want {
		if mins[i] != want[i] {
			t.Fatalf("mins = %v, want %v", mins, want)
		}
	}
}

func TestRangeSpanFastMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	grids := [][]int{{6, 7}, {4, 4, 4}, {3, 5, 2}, {9}}
	for _, dims := range grids {
		g := graph.MustGrid(dims...)
		// Random permutation mapping.
		perm := rng.Perm(g.Size())
		m, err := order.FromRanks("rand", g, perm)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 10; trial++ {
			qdims := make([]int, len(dims))
			for i := range qdims {
				qdims[i] = 1 + rng.Intn(dims[i])
			}
			slow, err := RangeSpan(m, qdims)
			if err != nil {
				t.Fatal(err)
			}
			fast, err := RangeSpanFast(m, qdims)
			if err != nil {
				t.Fatal(err)
			}
			if slow.Max != fast.Max || slow.Min != fast.Min || slow.Queries != fast.Queries {
				t.Fatalf("grid %v query %v: slow %+v fast %+v", dims, qdims, slow, fast)
			}
			if math.Abs(slow.Mean-fast.Mean) > 1e-9 || math.Abs(slow.StdDev-fast.StdDev) > 1e-9 {
				t.Fatalf("grid %v query %v: stats differ: slow %+v fast %+v", dims, qdims, slow, fast)
			}
		}
	}
}

func TestRangeSpanFastValidation(t *testing.T) {
	g := graph.MustGrid(4, 4)
	m, err := order.New("sweep", g, order.SpectralConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RangeSpanFast(m, []int{1}); err == nil {
		t.Error("arity accepted")
	}
	if _, err := RangeSpanFast(m, []int{5, 1}); err == nil {
		t.Error("oversize accepted")
	}
	if _, err := RangeSpanFast(m, []int{0, 1}); err == nil {
		t.Error("zero side accepted")
	}
}

func TestPartialRangeSpanSweep(t *testing.T) {
	// 4x4 sweep grid, target 25% (4 cells), band [2.83, 5.66] -> volumes
	// 3,4,5: shapes (1,3),(3,1),(1,4),(4,1),(2,2).
	g := graph.MustGrid(4, 4)
	m, err := order.New("sweep", g, order.SpectralConfig{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := PartialRangeSpan(m, 0.25, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Shapes != 5 {
		t.Errorf("shapes = %d, want 5", st.Shapes)
	}
	// Worst shape for sweep is the column (4,1): span = 3*4 = 12.
	if st.Max != 12 {
		t.Errorf("max span = %d, want 12", st.Max)
	}
	if st.Queries <= 0 || st.Mean <= 0 {
		t.Errorf("stats %+v", st)
	}
}

func TestPartialRangeSpanValidation(t *testing.T) {
	g := graph.MustGrid(4, 4)
	m, _ := order.New("sweep", g, order.SpectralConfig{})
	if _, err := PartialRangeSpan(m, 0, 0); err == nil {
		t.Error("zero fraction accepted")
	}
	if _, err := PartialRangeSpan(m, 2, 0); err == nil {
		t.Error("fraction > 1 accepted")
	}
	if _, err := PartialRangeSpan(m, 0.5, 0.5); err == nil {
		t.Error("tolerance < 1 accepted")
	}
	// A band so tight nothing matches: target 0.1% of 16 cells = 0.016.
	if _, err := PartialRangeSpan(m, 0.001, 1.0001); err == nil {
		t.Error("empty band accepted")
	}
}

func TestPartialRangeSpanSpectralBeatsSweepWorstCase(t *testing.T) {
	// The paper's Figure 6a claim on the partial-query population: the
	// worst-case span of Spectral is below Sweep's (whose fast-axis-only
	// shapes span nearly the whole file).
	g := graph.MustGrid(6, 6, 6, 6)
	sweep, err := order.New("sweep", g, order.SpectralConfig{})
	if err != nil {
		t.Fatal(err)
	}
	spectral, err := order.New("spectral", g, order.SpectralConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sw, err := PartialRangeSpan(sweep, 0.08, 0)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := PartialRangeSpan(spectral, 0.08, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Max >= sw.Max {
		t.Errorf("spectral worst span %d not below sweep %d", sp.Max, sw.Max)
	}
}
