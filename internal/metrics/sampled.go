package metrics

import (
	"fmt"
	"math/rand"

	"github.com/spectral-lpm/spectrallpm/internal/order"
)

// PairwiseByManhattanSampled estimates PairStats from uniformly random
// point pairs (deterministic in seed), for grids too large for the exact
// O(N²) sweep of PairwiseByManhattan. Max gaps are lower bounds on the true
// worst case; means are unbiased estimates. Counts reflect the sample, not
// the population.
func PairwiseByManhattanSampled(m *order.Mapping, pairs int, seed int64) (*PairStats, error) {
	if pairs < 1 {
		return nil, fmt.Errorf("metrics: sample size %d < 1", pairs)
	}
	g := m.Grid()
	n := g.Size()
	if n < 2 {
		return nil, fmt.Errorf("metrics: grid too small for pairs")
	}
	maxD := g.MaxManhattan()
	stats := &PairStats{
		MaxDistance: maxD,
		MaxGap:      make([]int, maxD),
		SumGap:      make([]float64, maxD),
		Count:       make([]int64, maxD),
	}
	rng := rand.New(rand.NewSource(seed))
	ranks := m.Ranks()
	for k := 0; k < pairs; k++ {
		a := rng.Intn(n)
		b := rng.Intn(n)
		if a == b {
			k--
			continue
		}
		dist := g.Manhattan(a, b)
		gap := ranks[a] - ranks[b]
		if gap < 0 {
			gap = -gap
		}
		idx := dist - 1
		if gap > stats.MaxGap[idx] {
			stats.MaxGap[idx] = gap
		}
		stats.SumGap[idx] += float64(gap)
		stats.Count[idx]++
	}
	return stats, nil
}
