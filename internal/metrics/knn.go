package metrics

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/spectral-lpm/spectrallpm/internal/order"
)

// RecallStats summarizes how well the 1-D order answers k-nearest-neighbor
// queries — the "multi-dimensional similarity search" application the
// paper's introduction and Figure 5 motivate. For each sampled query
// point, the candidate set is the window of `window` ranks on each side of
// the query's rank; recall is the fraction of true k nearest neighbors
// (Manhattan distance, ties admitted) found in the window.
type RecallStats struct {
	K, Window, Samples int
	// MeanRecall and MinRecall summarize recall over the sampled queries.
	MeanRecall, MinRecall float64
}

// NNRecall samples query points (deterministic in seed) and measures rank-
// window k-NN recall. window must be at least k for a recall of 1 to be
// possible.
func NNRecall(m *order.Mapping, k, window, samples int, seed int64) (RecallStats, error) {
	g := m.Grid()
	n := g.Size()
	if k < 1 || k >= n {
		return RecallStats{}, fmt.Errorf("metrics: k = %d outside [1,%d)", k, n)
	}
	if window < 1 {
		return RecallStats{}, fmt.Errorf("metrics: window = %d < 1", window)
	}
	if samples < 1 {
		return RecallStats{}, fmt.Errorf("metrics: samples = %d < 1", samples)
	}
	rng := rand.New(rand.NewSource(seed))
	st := RecallStats{K: k, Window: window, Samples: samples, MinRecall: 1}
	dists := make([]int, n)
	var sum float64
	for s := 0; s < samples; s++ {
		q := rng.Intn(n)
		// True k-NN threshold: the k-th smallest positive Manhattan
		// distance (ties admitted — any point at distance <= d_k counts).
		for id := 0; id < n; id++ {
			dists[id] = g.Manhattan(q, id)
		}
		sorted := append([]int(nil), dists...)
		sort.Ints(sorted)
		dk := sorted[k] // sorted[0] is the query itself at distance 0
		// Candidates: the rank window around the query.
		r := m.Rank(q)
		lo, hi := r-window, r+window
		if lo < 0 {
			lo = 0
		}
		if hi > n-1 {
			hi = n - 1
		}
		found := 0
		for rr := lo; rr <= hi; rr++ {
			id := m.Vertex(rr)
			if id != q && dists[id] <= dk {
				found++
			}
		}
		recall := float64(found) / float64(k)
		if recall > 1 {
			recall = 1
		}
		sum += recall
		if recall < st.MinRecall {
			st.MinRecall = recall
		}
	}
	st.MeanRecall = sum / float64(samples)
	return st, nil
}
