package metrics

import (
	"math"
	"testing"

	"github.com/spectral-lpm/spectrallpm/internal/graph"
	"github.com/spectral-lpm/spectrallpm/internal/order"
)

// sweep2x3 returns the row-major mapping on a 2x3 grid:
// ranks laid out as
//
//	0 1 2
//	3 4 5
func sweep2x3(t *testing.T) *order.Mapping {
	t.Helper()
	g := graph.MustGrid(2, 3)
	m, err := order.New("sweep", g, order.SpectralConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPairwiseByManhattanSweep(t *testing.T) {
	m := sweep2x3(t)
	st := PairwiseByManhattan(m)
	if st.MaxDistance != 3 {
		t.Fatalf("MaxDistance = %d, want 3", st.MaxDistance)
	}
	// Distance 1 pairs: horizontal gaps 1 (x4), vertical gaps 3 (x3).
	if st.MaxGapAt(1) != 3 {
		t.Errorf("MaxGap(1) = %d, want 3", st.MaxGapAt(1))
	}
	if st.Count[0] != 7 {
		t.Errorf("Count(1) = %d, want 7", st.Count[0])
	}
	wantMean1 := (4.0*1 + 3.0*3) / 7.0
	if math.Abs(st.MeanGap(1)-wantMean1) > 1e-12 {
		t.Errorf("MeanGap(1) = %v, want %v", st.MeanGap(1), wantMean1)
	}
	// Distance 3: pairs (0,0)-(1,2) gap 5 and (0,2)-(1,0) gap 1.
	if st.MaxGapAt(3) != 5 {
		t.Errorf("MaxGap(3) = %d, want 5", st.MaxGapAt(3))
	}
	if st.Count[2] != 2 {
		t.Errorf("Count(3) = %d, want 2", st.Count[2])
	}
	// Total pair count: C(6,2) = 15.
	var total int64
	for _, c := range st.Count {
		total += c
	}
	if total != 15 {
		t.Errorf("total pairs = %d, want 15", total)
	}
	// Out-of-range queries are safe.
	if st.MaxGapAt(0) != 0 || st.MaxGapAt(99) != 0 || st.MeanGap(99) != 0 {
		t.Error("out-of-range accessors not zero")
	}
}

func TestPairwiseSymmetricUnderMappingReversal(t *testing.T) {
	// Reversing the 1-D order leaves all |Δrank| unchanged.
	g := graph.MustGrid(4, 4)
	m, err := order.New("hilbert", g, order.SpectralConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rev := make([]int, 16)
	for id := 0; id < 16; id++ {
		rev[id] = 15 - m.Rank(id)
	}
	mRev, err := order.FromRanks("rev", g, rev)
	if err != nil {
		t.Fatal(err)
	}
	a, b := PairwiseByManhattan(m), PairwiseByManhattan(mRev)
	for d := 1; d <= a.MaxDistance; d++ {
		if a.MaxGapAt(d) != b.MaxGapAt(d) || math.Abs(a.MeanGap(d)-b.MeanGap(d)) > 1e-12 {
			t.Errorf("distance %d: stats differ under reversal", d)
		}
	}
}

func TestAxisGapSweep(t *testing.T) {
	// Row-major 2x3: pairs along axis 1 (fast axis) at delta 1 have gap 1;
	// along axis 0 (slow axis) gap 3 — the paper's Sweep-X vs Sweep-Y
	// asymmetry.
	m := sweep2x3(t)
	fast, err := AxisGap(m, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Max != 1 || fast.Mean != 1 || fast.Count != 4 {
		t.Errorf("fast axis stats %+v", fast)
	}
	slow, err := AxisGap(m, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Max != 3 || slow.Mean != 3 || slow.Count != 3 {
		t.Errorf("slow axis stats %+v", slow)
	}
}

func TestAxisGapValidation(t *testing.T) {
	m := sweep2x3(t)
	if _, err := AxisGap(m, 2, 1); err == nil {
		t.Error("bad axis accepted")
	}
	if _, err := AxisGap(m, 0, 0); err == nil {
		t.Error("zero delta accepted")
	}
	if _, err := AxisGap(m, 0, 2); err == nil {
		t.Error("delta >= side accepted")
	}
}

func TestRangeSpanSweepFullWidthRows(t *testing.T) {
	// Query covering one full row of the row-major 2x3 grid has span 2;
	// a 2x1 column query spans 3.
	m := sweep2x3(t)
	row, err := RangeSpan(m, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if row.Max != 2 || row.Min != 2 || row.Queries != 2 || row.StdDev != 0 {
		t.Errorf("row query stats %+v", row)
	}
	col, err := RangeSpan(m, []int{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if col.Max != 3 || col.Min != 3 || col.Queries != 3 {
		t.Errorf("column query stats %+v", col)
	}
	whole, err := RangeSpan(m, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if whole.Max != 5 || whole.Queries != 1 || whole.Mean != 5 {
		t.Errorf("whole-grid query stats %+v", whole)
	}
}

func TestRangeSpanValidation(t *testing.T) {
	m := sweep2x3(t)
	if _, err := RangeSpan(m, []int{1}); err == nil {
		t.Error("wrong arity accepted")
	}
	if _, err := RangeSpan(m, []int{0, 1}); err == nil {
		t.Error("zero side accepted")
	}
	if _, err := RangeSpan(m, []int{3, 1}); err == nil {
		t.Error("oversized query accepted")
	}
}

func TestRangeSpanSnakeBeatsSweepOnColumns(t *testing.T) {
	// Column queries on a snake order have smaller worst-case span than on
	// sweep? Not in general — but on a 2-row grid a 2x1 column is always
	// adjacent in the snake order at the turn and distance up to 2·side−1
	// in sweep. Verify the metric distinguishes the two orders.
	g := graph.MustGrid(2, 6)
	sweep, err := order.New("sweep", g, order.SpectralConfig{})
	if err != nil {
		t.Fatal(err)
	}
	snake, err := order.New("snake", g, order.SpectralConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sw, _ := RangeSpan(sweep, []int{2, 1})
	sn, _ := RangeSpan(snake, []int{2, 1})
	if sw.Max != 6 {
		t.Errorf("sweep column span max = %d, want 6", sw.Max)
	}
	if sn.Max != 11 || sn.Min != 1 {
		t.Errorf("snake column span max/min = %d/%d, want 11/1", sn.Max, sn.Min)
	}
	if sn.StdDev == 0 {
		t.Error("snake span stddev should be positive")
	}
}

func TestRangeClustersSweep(t *testing.T) {
	m := sweep2x3(t)
	// A full row is one cluster; a 2x1 column is two clusters.
	row, err := RangeClusters(m, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if row.Max != 1 || row.Mean != 1 {
		t.Errorf("row clusters %+v", row)
	}
	col, err := RangeClusters(m, []int{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if col.Max != 2 || col.Mean != 2 {
		t.Errorf("column clusters %+v", col)
	}
	if _, err := RangeClusters(m, []int{9, 9}); err == nil {
		t.Error("oversized query accepted")
	}
	if _, err := RangeClusters(m, []int{1}); err == nil {
		t.Error("wrong arity accepted")
	}
}

func TestRangeClustersWholeGridIsOneCluster(t *testing.T) {
	// Any permutation covering the whole grid occupies ranks 0..N-1: one
	// cluster, regardless of mapping.
	g := graph.MustGrid(4, 4)
	for _, name := range []string{"sweep", "hilbert", "spectral"} {
		m, err := order.New(name, g, order.SpectralConfig{})
		if err != nil {
			t.Fatal(err)
		}
		st, err := RangeClusters(m, []int{4, 4})
		if err != nil {
			t.Fatal(err)
		}
		if st.Max != 1 {
			t.Errorf("%s: whole grid clusters = %d", name, st.Max)
		}
	}
}

func TestHilbertBeatsSweepOnSquareQueries(t *testing.T) {
	// The classic result motivating fractal curves: on square window
	// queries the Hilbert curve touches fewer clusters than row-major
	// sweep on average (Moon et al.).
	g := graph.MustGrid(8, 8)
	hilbert, err := order.New("hilbert", g, order.SpectralConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sweep, err := order.New("sweep", g, order.SpectralConfig{})
	if err != nil {
		t.Fatal(err)
	}
	h, _ := RangeClusters(hilbert, []int{4, 4})
	s, _ := RangeClusters(sweep, []int{4, 4})
	if h.Mean >= s.Mean {
		t.Errorf("hilbert mean clusters %v not below sweep %v", h.Mean, s.Mean)
	}
}
