package metrics

import (
	"math"
	"testing"

	"github.com/spectral-lpm/spectrallpm/internal/graph"
	"github.com/spectral-lpm/spectrallpm/internal/order"
)

func TestPairwiseSampledValidation(t *testing.T) {
	g := graph.MustGrid(4, 4)
	m, _ := order.New("sweep", g, order.SpectralConfig{})
	if _, err := PairwiseByManhattanSampled(m, 0, 1); err == nil {
		t.Error("zero sample accepted")
	}
	one := graph.MustGrid(1)
	m1, err := order.New("sweep", one, order.SpectralConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PairwiseByManhattanSampled(m1, 10, 1); err == nil {
		t.Error("single-point grid accepted")
	}
}

func TestPairwiseSampledApproximatesExact(t *testing.T) {
	// With a large sample on a small grid, sampled means converge to the
	// exact means and sampled maxima never exceed the exact maxima.
	g := graph.MustGrid(6, 6)
	m, err := order.New("hilbert", g, order.SpectralConfig{})
	if err != nil {
		t.Fatal(err)
	}
	exact := PairwiseByManhattan(m)
	sampled, err := PairwiseByManhattanSampled(m, 60000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if sampled.MaxDistance != exact.MaxDistance {
		t.Fatalf("max distance mismatch")
	}
	for d := 1; d <= exact.MaxDistance; d++ {
		if sampled.MaxGapAt(d) > exact.MaxGapAt(d) {
			t.Errorf("d=%d: sampled max %d exceeds exact %d", d, sampled.MaxGapAt(d), exact.MaxGapAt(d))
		}
		if exact.Count[d-1] > 20 && sampled.Count[d-1] > 100 {
			em, sm := exact.MeanGap(d), sampled.MeanGap(d)
			if math.Abs(em-sm) > 0.25*em+1 {
				t.Errorf("d=%d: sampled mean %v far from exact %v", d, sm, em)
			}
		}
	}
	// With enough samples the global worst pair is usually found; check
	// the overall max is close.
	var exactMax, sampledMax int
	for d := 1; d <= exact.MaxDistance; d++ {
		if exact.MaxGapAt(d) > exactMax {
			exactMax = exact.MaxGapAt(d)
		}
		if sampled.MaxGapAt(d) > sampledMax {
			sampledMax = sampled.MaxGapAt(d)
		}
	}
	if float64(sampledMax) < 0.9*float64(exactMax) {
		t.Errorf("sampled global max %d too far below exact %d", sampledMax, exactMax)
	}
}

func TestPairwiseSampledDeterministic(t *testing.T) {
	g := graph.MustGrid(8, 8)
	m, _ := order.New("gray", g, order.SpectralConfig{})
	a, err := PairwiseByManhattanSampled(m, 1000, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PairwiseByManhattanSampled(m, 1000, 9)
	if err != nil {
		t.Fatal(err)
	}
	for d := 1; d <= a.MaxDistance; d++ {
		if a.MaxGapAt(d) != b.MaxGapAt(d) || a.Count[d-1] != b.Count[d-1] {
			t.Fatal("sampled stats not deterministic")
		}
	}
}
