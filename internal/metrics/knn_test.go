package metrics

import (
	"testing"

	"github.com/spectral-lpm/spectrallpm/internal/graph"
	"github.com/spectral-lpm/spectrallpm/internal/order"
)

func TestNNRecallValidation(t *testing.T) {
	g := graph.MustGrid(4, 4)
	m, err := order.New("sweep", g, order.SpectralConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NNRecall(m, 0, 4, 10, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NNRecall(m, 16, 4, 10, 1); err == nil {
		t.Error("k=n accepted")
	}
	if _, err := NNRecall(m, 2, 0, 10, 1); err == nil {
		t.Error("window=0 accepted")
	}
	if _, err := NNRecall(m, 2, 4, 0, 1); err == nil {
		t.Error("samples=0 accepted")
	}
}

func TestNNRecall1DGridIsPerfect(t *testing.T) {
	// On a 1-D grid the sweep order IS the spatial order: a window of k
	// ranks contains every true k-NN (ties included need window >= k on
	// each side, which it has).
	g := graph.MustGrid(32)
	m, err := order.New("sweep", g, order.SpectralConfig{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := NNRecall(m, 3, 3, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	if st.MeanRecall < 0.999 {
		t.Errorf("1-D recall = %v, want 1", st.MeanRecall)
	}
}

func TestNNRecallBoundsAndDeterminism(t *testing.T) {
	g := graph.MustGrid(8, 8)
	m, err := order.New("hilbert", g, order.SpectralConfig{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NNRecall(m, 4, 8, 30, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NNRecall(m, 4, 8, 30, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("NNRecall not deterministic for fixed seed")
	}
	if a.MeanRecall < 0 || a.MeanRecall > 1 || a.MinRecall > a.MeanRecall {
		t.Errorf("implausible stats %+v", a)
	}
}

func TestNNRecallLocalityOrdersBeatRandom(t *testing.T) {
	// Hilbert and spectral windows must recall far more true neighbors
	// than a random permutation's window.
	g := graph.MustGrid(12, 12)
	recall := func(m *order.Mapping) float64 {
		st, err := NNRecall(m, 4, 8, 60, 11)
		if err != nil {
			t.Fatal(err)
		}
		return st.MeanRecall
	}
	hilbert, err := order.New("hilbert", g, order.SpectralConfig{})
	if err != nil {
		t.Fatal(err)
	}
	spectral, err := order.New("spectral", g, order.SpectralConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic "random" mapping: multiply ranks by a unit coprime to
	// N to scatter locality.
	scramble := make([]int, g.Size())
	for id := range scramble {
		scramble[id] = (id * 77) % g.Size()
	}
	random, err := order.FromRanks("scramble", g, scramble)
	if err != nil {
		t.Fatal(err)
	}
	rh, rs, rr := recall(hilbert), recall(spectral), recall(random)
	if rh <= rr || rs <= rr {
		t.Errorf("locality orders should beat scrambled: hilbert %v spectral %v scrambled %v", rh, rs, rr)
	}
}
