package spectrallpm

import (
	"errors"

	"github.com/spectral-lpm/spectrallpm/internal/errs"
)

// Sentinel errors. Errors returned by this package (and by the deprecated
// free functions it wraps) can be classified with errors.Is against these
// values, so a server can turn a malformed request into a 4xx instead of a
// retry or a crash.
var (
	// ErrUnknownMapping reports a mapping name outside the supported
	// families (see StandardMappings and the Build documentation).
	ErrUnknownMapping = errs.ErrUnknownMapping
	// ErrNotPermutation reports a rank slice that is not a permutation of
	// 0..N-1 — a duplicate, a hole, or an out-of-range value — passed to
	// WithRanks, MappingFromRanks, or found in a serialized index.
	ErrNotPermutation = errs.ErrNotPermutation
	// ErrDimensionMismatch reports coordinates, boxes, or slices whose
	// arity or extent does not fit the index's grid.
	ErrDimensionMismatch = errs.ErrDimensionMismatch
	// ErrRankOutOfRange reports a 1-D rank outside [0, N).
	ErrRankOutOfRange = errs.ErrRankOutOfRange
	// ErrCorruptIndex reports a serialized index (single or sharded) whose
	// framing decodes but whose contents are inconsistent or hostile: a
	// non-positive page size, impossible λ₂ entries, a dims product that
	// would wrap the vertex count, shard frames that do not tile the
	// declared grid, or mismatched shard metadata. A server loading
	// untrusted files should treat it as a permanent (non-retryable) load
	// failure.
	ErrCorruptIndex = errs.ErrCorruptIndex
	// ErrIndexClosed reports a query against a mapped index whose Close has
	// begun: the backing byte region is being (or has been) unmapped, so no
	// new borrow of its bytes may start. In-flight queries are unaffected —
	// Close blocks until the last borrower releases. A server that swapped
	// in a replacement index treats it as "retry against the current
	// index", never as a request error.
	ErrIndexClosed = errs.ErrIndexClosed
	// ErrPointNotIndexed reports a lookup of coordinates that are not
	// among a point-set index's indexed points — whether inside its
	// bounding box or beyond it (the bounding box is an implementation
	// detail, so absent is absent either way).
	ErrPointNotIndexed = errors.New("point not in index")
)
