// Tests of the box-query engine behind Scan/ScanInto/Pages/QueryIO: a
// property test pinning the merge-based grid path and the R-tree point-set
// path rank-for-rank against a naive enumerate-filter-sort oracle, a fuzz
// target over grid geometry, and the zero-allocation guarantee of the
// steady-state serving paths.
package spectrallpm_test

import (
	"context"
	"math/rand"
	"slices"
	"sort"
	"testing"

	spectrallpm "github.com/spectral-lpm/spectrallpm"
)

// oracleBoxRanks enumerates every indexed point, filters by the box, and
// sorts the ranks — the obviously-correct reference the engine must match.
func oracleBoxRanks(t *testing.T, ix *spectrallpm.Index, b spectrallpm.Box) []int {
	t.Helper()
	var ranks []int
	for r := 0; r < ix.N(); r++ {
		p, err := ix.Point(r)
		if err != nil {
			t.Fatal(err)
		}
		if b.Contains(p) && len(p) == len(b.Start) {
			ranks = append(ranks, r)
		}
	}
	sort.Ints(ranks)
	return ranks
}

// scannedRanks drains ScanInto and verifies that the yielded coordinates
// round-trip through Rank, copying nothing out of the borrowed buffer.
func scannedRanks(t *testing.T, ix *spectrallpm.Index, b spectrallpm.Box) []int {
	t.Helper()
	var got []int
	err := ix.ScanInto(b, func(r int, p []int) bool {
		back, err := ix.Rank(p...)
		if err != nil || back != r {
			t.Fatalf("yielded coords %v do not round-trip: rank %d vs %d (%v)", p, r, back, err)
		}
		got = append(got, r)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// checkAgainstOracle compares every query surface against the oracle for
// one box.
func checkAgainstOracle(t *testing.T, ix *spectrallpm.Index, b spectrallpm.Box) {
	t.Helper()
	want := oracleBoxRanks(t, ix, b)
	got := scannedRanks(t, ix, b)
	if !slices.Equal(got, want) {
		t.Fatalf("box %v: scan ranks %v, oracle %v", b, got, want)
	}
	// Scan (iterator form) agrees with ScanInto.
	seq, err := ix.Scan(b)
	if err != nil {
		t.Fatal(err)
	}
	var viaSeq []int
	for r := range seq {
		viaSeq = append(viaSeq, r)
	}
	if !slices.Equal(viaSeq, want) {
		t.Fatalf("box %v: Scan ranks %v, oracle %v", b, viaSeq, want)
	}
	// Pages and QueryIO agree with plans derived from the oracle ranks.
	io, err := ix.QueryIO(b)
	if err != nil {
		t.Fatal(err)
	}
	runs, err := ix.Pages(b)
	if err != nil {
		t.Fatal(err)
	}
	pages, seeks := 0, len(runs)
	for _, run := range runs {
		pages += run.Pages
	}
	if pages != io.Pages || seeks != io.Seeks {
		t.Fatalf("box %v: plan %v disagrees with stats %+v", b, runs, io)
	}
	wantPages := map[int]bool{}
	for _, r := range want {
		wantPages[r/ix.RecordsPerPage()] = true
	}
	if pages != len(wantPages) {
		t.Fatalf("box %v: planned %d pages, oracle %d", b, pages, len(wantPages))
	}
}

// TestGridQueryMatchesOracle drives random grids, mappings (curves and
// adversarial random permutations), and boxes — including full-grid and
// single-cell boxes — through the query engine.
func TestGridQueryMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	mappings := []string{"hilbert", "sweep", "morton", "snake"}
	for trial := 0; trial < 60; trial++ {
		d := 1 + rng.Intn(3)
		dims := make([]int, d)
		for i := range dims {
			dims[i] = 1 + rng.Intn(8)
		}
		opts := []spectrallpm.BuildOption{
			spectrallpm.WithGrid(dims...),
			spectrallpm.WithPageSize(1 + rng.Intn(6)),
		}
		if trial%2 == 0 {
			size := 1
			for _, s := range dims {
				size *= s
			}
			opts = append(opts, spectrallpm.WithRanks(rng.Perm(size)))
		} else {
			opts = append(opts, spectrallpm.WithMapping(mappings[trial%len(mappings)]))
		}
		ix, err := spectrallpm.Build(context.Background(), opts...)
		if err != nil {
			t.Fatal(err)
		}
		// Full-grid box, a random box, and a single cell.
		checkAgainstOracle(t, ix, spectrallpm.Box{Start: make([]int, d), Dims: ix.Dims()})
		checkAgainstOracle(t, ix, randomBox(rng, dims))
		cell := spectrallpm.Box{Start: make([]int, d), Dims: make([]int, d)}
		for i, s := range dims {
			cell.Start[i] = rng.Intn(s)
			cell.Dims[i] = 1
		}
		checkAgainstOracle(t, ix, cell)
	}
}

func randomBox(rng *rand.Rand, dims []int) spectrallpm.Box {
	b := spectrallpm.Box{Start: make([]int, len(dims)), Dims: make([]int, len(dims))}
	for i, s := range dims {
		b.Start[i] = rng.Intn(s)
		b.Dims[i] = 1 + rng.Intn(s-b.Start[i])
	}
	return b
}

// TestPointQueryMatchesOracle drives random point sets through the R-tree
// path, including boxes beyond the bounding grid, empty boxes, and boxes
// covering everything.
func TestPointQueryMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 12; trial++ {
		d := 2 + rng.Intn(2)
		side := 4 + rng.Intn(8)
		seen := map[string]bool{}
		var pts [][]int
		for len(pts) < 6+rng.Intn(40) {
			p := make([]int, d)
			for i := range p {
				p[i] = rng.Intn(side)
			}
			k := ""
			for _, c := range p {
				k += string(rune('a'+c)) + ","
			}
			if !seen[k] {
				seen[k] = true
				pts = append(pts, p)
			}
		}
		ix, err := spectrallpm.Build(context.Background(),
			spectrallpm.WithPoints(pts), spectrallpm.WithSeed(int64(trial)),
			spectrallpm.WithPageSize(1+rng.Intn(4)))
		if err != nil {
			t.Fatal(err)
		}
		// A box past the bounding grid still answers (only indexed points
		// match); an all-covering box returns every rank.
		big := spectrallpm.Box{Start: make([]int, d), Dims: make([]int, d)}
		for i := range big.Dims {
			big.Dims[i] = 10 * side
		}
		checkAgainstOracle(t, ix, big)
		for q := 0; q < 6; q++ {
			b := spectrallpm.Box{Start: make([]int, d), Dims: make([]int, d)}
			for i := range b.Start {
				b.Start[i] = rng.Intn(side) - 2
				b.Dims[i] = 1 + rng.Intn(side)
			}
			checkAgainstOracle(t, ix, b)
		}
		// A zero-volume box matches nothing.
		empty := spectrallpm.Box{Start: make([]int, d), Dims: make([]int, d)}
		if got := scannedRanks(t, ix, empty); len(got) != 0 {
			t.Fatalf("empty box matched %v", got)
		}
	}
}

// FuzzGridBoxRanks fuzzes 2-D grid geometry and a rank permutation seed,
// asserting engine/oracle agreement for whatever box the fuzzer shapes.
func FuzzGridBoxRanks(f *testing.F) {
	f.Add(uint8(6), uint8(7), int64(1), uint8(1), uint8(2), uint8(3), uint8(3))
	f.Add(uint8(16), uint8(3), int64(9), uint8(0), uint8(0), uint8(16), uint8(3))
	f.Add(uint8(1), uint8(1), int64(0), uint8(0), uint8(0), uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, w, h uint8, seed int64, x, y, bw, bh uint8) {
		W, H := int(w%24)+1, int(h%24)+1
		rng := rand.New(rand.NewSource(seed))
		ix, err := spectrallpm.Build(context.Background(),
			spectrallpm.WithGrid(W, H), spectrallpm.WithRanks(rng.Perm(W*H)),
			spectrallpm.WithPageSize(4))
		if err != nil {
			t.Fatal(err)
		}
		b := spectrallpm.Box{
			Start: []int{int(x) % W, int(y) % H},
			Dims:  []int{int(bw)%(W-int(x)%W) + 1, int(bh)%(H-int(y)%H) + 1},
		}
		want := oracleBoxRanks(t, ix, b)
		got := scannedRanks(t, ix, b)
		if !slices.Equal(got, want) {
			t.Fatalf("grid %dx%d box %v: got %v want %v", W, H, b, got, want)
		}
	})
}

// TestScanAbandoned pins the fixed leak: a sequence obtained from Scan but
// never iterated must not strand pooled rank scratch or poison later
// queries. The box is validated (and copied) eagerly, the expensive rank
// materialization happens lazily on first iteration, and an abandoned
// sequence yields nothing once another query has consumed the pool.
func TestScanAbandoned(t *testing.T) {
	ix, err := spectrallpm.Build(context.Background(),
		spectrallpm.WithGrid(16, 16), spectrallpm.WithMapping("hilbert"),
		spectrallpm.WithPageSize(8))
	if err != nil {
		t.Fatal(err)
	}
	box := spectrallpm.Box{Start: []int{2, 2}, Dims: []int{4, 4}}
	// Validation still happens at Scan time, before any iteration.
	if _, err := ix.Scan(spectrallpm.Box{Start: []int{0, 0}, Dims: []int{99, 99}}); err == nil {
		t.Fatal("invalid box accepted by lazy Scan")
	}
	// Abandon many sequences; every later query must still be correct.
	for i := 0; i < 100; i++ {
		if _, err := ix.Scan(box); err != nil {
			t.Fatal(err)
		}
	}
	want := oracleBoxRanks(t, ix, box)
	if got := scannedRanks(t, ix, box); !slices.Equal(got, want) {
		t.Fatalf("after abandoned scans: got %v want %v", got, want)
	}
	// The caller may recycle its Box slices the moment Scan returns: the
	// box is copied into the sequence, not referenced.
	b := spectrallpm.Box{Start: []int{2, 2}, Dims: []int{4, 4}}
	seq, err := ix.Scan(b)
	if err != nil {
		t.Fatal(err)
	}
	b.Start[0], b.Dims[0] = 13, 1 // mutate before iterating
	var got []int
	for r := range seq {
		got = append(got, r)
	}
	if !slices.Equal(got, want) {
		t.Fatalf("mutating the caller's box changed an armed sequence: got %v want %v", got, want)
	}
}

// TestScanZeroAlloc pins the steady-state allocation count of the serving
// paths at zero for grid indexes: Scan (consumed by invoking the sequence
// with a preallocated yield), ScanInto, PagesInto with a reused buffer, and
// QueryIO. Steady state means pools are warm — a few priming queries run
// first.
func TestScanZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation makes sync.Pool allocate")
	}
	ix, err := spectrallpm.Build(context.Background(),
		spectrallpm.WithGrid(64, 64), spectrallpm.WithMapping("hilbert"),
		spectrallpm.WithPageSize(16))
	if err != nil {
		t.Fatal(err)
	}
	box := spectrallpm.Box{Start: []int{5, 9}, Dims: []int{12, 10}}
	n := 0
	yield := func(int, []int) bool { n++; return true }
	dst := make([]spectrallpm.PageRun, 0, 64)

	scan := func() {
		seq, err := ix.Scan(box)
		if err != nil {
			t.Fatal(err)
		}
		seq(yield)
	}
	scanInto := func() {
		if err := ix.ScanInto(box, yield); err != nil {
			t.Fatal(err)
		}
	}
	pages := func() {
		var err error
		dst, err = ix.PagesInto(box, dst[:0])
		if err != nil {
			t.Fatal(err)
		}
	}
	queryIO := func() {
		if _, err := ix.QueryIO(box); err != nil {
			t.Fatal(err)
		}
	}
	paths := map[string]func(){
		"Scan": scan, "ScanInto": scanInto, "PagesInto": pages, "QueryIO": queryIO,
	}
	for _, name := range sortedKeys(paths) {
		fn := paths[name]
		fn() // warm the pools
		if avg := testing.AllocsPerRun(50, fn); avg != 0 {
			t.Errorf("%s allocates %.1f per op in steady state, want 0", name, avg)
		}
	}
	if n == 0 {
		t.Fatal("yield never ran")
	}
}

// TestRankZeroAlloc pins Rank at zero heap allocations per call on every
// index flavor. The historical 1 alloc/16 B per op (BENCH_query.json) was
// the variadic coords slice escaping to the heap because the error paths
// handed it to fmt; errPointNotIndexed now formats a copy, so the compiler
// keeps the caller's argument on the stack.
func TestRankZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	grid, err := spectrallpm.Build(context.Background(),
		spectrallpm.WithGrid(16, 16), spectrallpm.WithMapping("hilbert"))
	if err != nil {
		t.Fatal(err)
	}
	points, err := spectrallpm.Build(context.Background(),
		spectrallpm.WithPoints([][]int{{0, 0}, {0, 1}, {3, 2}, {7, 7}}))
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := spectrallpm.BuildSharded(context.Background(), 4,
		spectrallpm.WithGrid(16, 16), spectrallpm.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	ranks := map[string]func(){
		"grid": func() {
			if _, err := grid.Rank(3, 7); err != nil {
				t.Fatal(err)
			}
		},
		"points": func() {
			if _, err := points.Rank(3, 2); err != nil {
				t.Fatal(err)
			}
		},
		"sharded": func() {
			if _, err := sharded.Rank(9, 12); err != nil {
				t.Fatal(err)
			}
		},
	}
	for _, name := range sortedKeys(ranks) {
		fn := ranks[name]
		if avg := testing.AllocsPerRun(100, fn); avg != 0 {
			t.Errorf("%s Rank allocates %.1f per op, want 0", name, avg)
		}
	}
}

// TestScanRangeAllocsPinned documents and pins the small-box Scan cost
// when consumed with a range statement (BENCH_query.json's scan-8x8 rows:
// 3 allocs/40 B per op). The allocations are NOT in the library — the
// iterator shell and rank scratch are pooled, and TestScanZeroAlloc shows
// the same sequence consumed through a predeclared yield func is
// allocation-free. They are the call site's: `for range seq` synthesizes a
// fresh yield closure per loop and moves the locals it captures (here the
// result counter) to the heap, which no callee can avoid. Serving loops
// that care should predeclare the yield (or use ScanInto); this test pins
// the range-form ceiling so a library regression underneath it still
// surfaces.
func TestScanRangeAllocsPinned(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	ix, err := spectrallpm.Build(context.Background(),
		spectrallpm.WithGrid(64, 64), spectrallpm.WithMapping("hilbert"))
	if err != nil {
		t.Fatal(err)
	}
	box := spectrallpm.Box{Start: []int{10, 10}, Dims: []int{8, 8}}
	n := 0
	rangeForm := func() {
		seq, err := ix.Scan(box)
		if err != nil {
			t.Fatal(err)
		}
		n = 0
		for range seq {
			n++
		}
	}
	rangeForm() // warm the pools
	if n != 64 {
		t.Fatalf("scan returned %d results", n)
	}
	if avg := testing.AllocsPerRun(50, rangeForm); avg > 3 {
		t.Errorf("range-form Scan allocates %.1f per op, want <= 3 (the range statement's own closure)", avg)
	}
}
