package spectrallpm

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/spectral-lpm/spectrallpm/internal/core"
	"github.com/spectral-lpm/spectrallpm/internal/graph"
	"github.com/spectral-lpm/spectrallpm/internal/partition"
	"github.com/spectral-lpm/spectrallpm/internal/serve"
	"github.com/spectral-lpm/spectrallpm/internal/shard"
	"github.com/spectral-lpm/spectrallpm/internal/storage"
)

// ShardedIndex is an Index split into S shards — the paper's declustering
// example (partitioning a point set across disks via the Fiedler vector's
// median cut) applied as a build and serving policy. The domain is
// partitioned by recursive spectral bisection (closed-form for grids, a
// true per-level eigensolve for point sets), each shard solves its own
// spectral order independently — and therefore in parallel at build time —
// and shard i owns the contiguous global rank block before shard i+1, so
// per-shard orders concatenate into one locality-preserving global order:
// each shard's order is independently optimal for its subdomain, and the
// bisection tree orders the shards themselves spectrally.
//
// Serving mirrors Index: a box query is routed only to the shards whose
// bounding boxes intersect it (the planner), each intersected shard
// answers from its own engine, and the per-shard rank streams merge into
// global rank order. A ShardedIndex is immutable after BuildSharded or
// ReadSharded returns and safe for concurrent use without locking.
type ShardedIndex struct {
	grid   *graph.Grid // global bounding grid
	shards []*Index
	origin [][]int // per-shard coordinate translation (all zeros for point shards)
	lo, hi [][]int // per-shard inclusive bounding box in global coordinates
	offset []int   // len(shards)+1: shard i owns global ranks [offset[i], offset[i+1])
	pager  *storage.Pager
	points bool
	par    int        // serving parallelism (QueryBatch workers); 0 = GOMAXPROCS
	core   serve.Core // the shared serving core all query methods delegate to

	// Mapped-index lifetime (nil/zero for owned indexes): one Lifecycle is
	// shared with every shard Index, since all shard frames borrow from the
	// same mapped region — see Index for the field contracts.
	lc        *serve.Lifecycle
	closeFn   func() error
	closeOnce sync.Once
	closeErr  error
}

// BuildSharded builds a ShardedIndex over shards shards: it plans the
// partition, builds the per-shard Indexes in parallel (bounded by
// WithParallelism, observing ctx between shard builds), and assembles the
// serving plan. Congruent grid shards — cells of identical shape, the
// common case under the proportional plan — share a single solve and a
// single immutable Index, so an evenly split grid builds in roughly one
// shard-sized solve regardless of the shard count. It accepts the same options as Build with the exceptions
// that follow from sharding itself: only the spectral mapping is supported
// (a fractal curve is fixed before the data — resharding cannot change it,
// which is the paper's argument), and WithRanks, WithConnectivity,
// WithEdgeWeights, and WithAffinity are rejected — the grid partition is
// the closed-form Fiedler cut of the default orthogonal unit-weight graph,
// and affinity edges may cross shard boundaries where no per-shard solve
// could honor them.
func BuildSharded(ctx context.Context, shards int, opts ...BuildOption) (*ShardedIndex, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := buildConfig{name: "spectral", pageSize: DefaultRecordsPerPage}
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	if (cfg.grid == nil) == (cfg.points == nil) {
		return nil, fmt.Errorf("spectrallpm: exactly one of WithGrid and WithPoints is required")
	}
	if cfg.nameSet && cfg.name != "spectral" {
		return nil, fmt.Errorf("spectrallpm: sharded indexes support only the spectral mapping (%w %q)", ErrUnknownMapping, cfg.name)
	}
	if cfg.ranks != nil {
		return nil, fmt.Errorf("spectrallpm: WithRanks does not apply to sharded indexes (wrap the precomputed order in a single Index)")
	}
	if err := rejectGraphOptions(&cfg, "sharded indexes", false); err != nil {
		return nil, err
	}
	if shards < 1 {
		return nil, fmt.Errorf("spectrallpm: shard count %d < 1", shards)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if cfg.points != nil {
		return buildShardedPoints(ctx, shards, &cfg)
	}
	return buildShardedGrid(ctx, shards, &cfg)
}

func buildShardedGrid(ctx context.Context, shards int, cfg *buildConfig) (*ShardedIndex, error) {
	cells, err := shard.GridPlan(cfg.grid.Dims(), shards)
	if err != nil {
		return nil, fmt.Errorf("spectrallpm: %w", err)
	}
	// Congruent cells share one build: a shard's spectral order depends
	// only on its cell SHAPE (the default graph construction is the same
	// translated subgrid, and the build is deterministic in the seed), and
	// GridPlan's proportional halving produces few distinct shapes — often
	// exactly one. Each distinct shape is built once, in parallel across
	// shapes, and every congruent shard serves from the same immutable
	// Index. With the closed-form engine the per-shape build is no longer
	// an eigensolve at all (default grids order analytically), so the
	// sharing is mostly a memory win on this path — it still collapses S
	// congruent shards onto one Index; it remains the build-time win
	// whenever a shard falls back to the solver (forced method, custom
	// tolerance).
	d := cfg.grid.D()
	shapeKey := func(dims []int) string {
		return fmt.Sprint(dims)
	}
	shapeAt := make(map[string]int)
	var shapes [][]int
	cellShape := make([]int, len(cells))
	for i, c := range cells {
		k := shapeKey(c.Dims)
		s, ok := shapeAt[k]
		if !ok {
			s = len(shapes)
			shapeAt[k] = s
			shapes = append(shapes, c.Dims)
		}
		cellShape[i] = s
	}
	built := make([]*Index, len(shapes))
	err = buildShardsParallel(ctx, len(shapes), cfg, func(ctx context.Context, i int, solver SolverOptions) error {
		ix, err := Build(ctx,
			WithGrid(shapes[i]...),
			WithSolver(solver),
			WithDegeneracy(cfg.degeneracy),
			WithPageSize(cfg.pageSize))
		if err != nil {
			return err
		}
		built[i] = ix
		return nil
	})
	if err != nil {
		return nil, err
	}
	sx := &ShardedIndex{grid: cfg.grid, par: cfg.solver.Parallelism}
	sx.shards = make([]*Index, len(cells))
	for i, c := range cells {
		sx.shards[i] = built[cellShape[i]]
		lo := append([]int(nil), c.Origin...)
		hi := make([]int, d)
		for j := range hi {
			hi[j] = c.Origin[j] + c.Dims[j] - 1
		}
		sx.origin = append(sx.origin, lo)
		sx.lo = append(sx.lo, lo)
		sx.hi = append(sx.hi, hi)
	}
	return finishSharded(sx, cfg.pageSize)
}

func buildShardedPoints(ctx context.Context, shards int, cfg *buildConfig) (*ShardedIndex, error) {
	// Validate the point set and derive the global bounding grid exactly
	// the way Build does, then partition the point graph by recursive
	// spectral median cuts in bisection-tree order — consecutive parts are
	// spectrally adjacent, so the block rank assignment below preserves
	// locality across shard boundaries.
	d := len(cfg.points[0])
	dims := make([]int, d)
	for i, p := range cfg.points {
		if len(p) != d {
			return nil, fmt.Errorf("spectrallpm: point %d has arity %d, want %d: %w", i, len(p), d, ErrDimensionMismatch)
		}
		for j, c := range p {
			if c < 0 {
				return nil, fmt.Errorf("spectrallpm: point %d has negative coordinate %d: %w", i, c, ErrDimensionMismatch)
			}
			if c+1 > dims[j] {
				dims[j] = c + 1
			}
		}
	}
	grid, err := graph.NewGrid(dims...)
	if err != nil {
		return nil, err
	}
	if shards > len(cfg.points) {
		return nil, fmt.Errorf("spectrallpm: shard count %d exceeds %d points", shards, len(cfg.points))
	}
	gr, err := graph.PointGraph(cfg.points)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	parts, err := partition.KWayOrdered(gr, shards, core.Options{Solver: cfg.solver, Degeneracy: cfg.degeneracy})
	if err != nil {
		return nil, err
	}
	sx := &ShardedIndex{grid: grid, points: true, par: cfg.solver.Parallelism}
	sx.shards = make([]*Index, len(parts))
	subsets := make([][][]int, len(parts))
	for i, part := range parts {
		subset := make([][]int, len(part))
		for k, pid := range part {
			subset[k] = cfg.points[pid]
		}
		subsets[i] = subset
	}
	err = buildShardsParallel(ctx, len(parts), cfg, func(ctx context.Context, i int, solver SolverOptions) error {
		ix, err := Build(ctx,
			WithPoints(subsets[i]),
			WithSolver(solver),
			WithDegeneracy(cfg.degeneracy),
			WithPageSize(cfg.pageSize))
		if err != nil {
			return err
		}
		sx.shards[i] = ix
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := range sx.shards {
		lo, hi := pointBounds(subsets[i], d)
		sx.origin = append(sx.origin, make([]int, d)) // points stay in global coordinates
		sx.lo = append(sx.lo, lo)
		sx.hi = append(sx.hi, hi)
	}
	return finishSharded(sx, cfg.pageSize)
}

// buildShardsParallel runs build(i) for every shard across a bounded worker
// pool: min(shards, WithParallelism) concurrent builds, each granted an
// equal share of the solver parallelism so the shard solves neither
// serialize nor oversubscribe the machine. The first error (lowest shard
// index) wins; ctx cancellation is observed before each shard starts and
// between the build phases inside each shard's Build.
func buildShardsParallel(ctx context.Context, shards int, cfg *buildConfig, build func(ctx context.Context, i int, solver SolverOptions) error) error {
	par := cfg.solver.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	workers := par
	if workers > shards {
		workers = shards
	}
	solver := cfg.solver
	solver.Parallelism = par / workers
	if solver.Parallelism < 1 {
		solver.Parallelism = 1
	}
	errs := make([]error, shards)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= shards || failed.Load() {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				if err := build(ctx, i, solver); err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("spectrallpm: shard %d: %w", i, err)
		}
	}
	return nil
}

// finishSharded assembles the cross-shard serving state: the cumulative
// rank offsets that give shard i the global rank block [offset[i],
// offset[i+1]) and the global pager over the concatenated record space.
func finishSharded(sx *ShardedIndex, pageSize int) (*ShardedIndex, error) {
	sx.offset = make([]int, len(sx.shards)+1)
	for i, ix := range sx.shards {
		sx.offset[i+1] = sx.offset[i] + ix.N()
	}
	pager, err := storage.NewPager(sx.offset[len(sx.shards)], pageSize)
	if err != nil {
		return nil, err
	}
	sx.pager = pager
	sx.initCore()
	return sx, nil
}

func pointBounds(pts [][]int, d int) (lo, hi []int) {
	lo = append([]int(nil), pts[0]...)
	hi = append([]int(nil), pts[0]...)
	for _, p := range pts {
		for j, c := range p {
			if c < lo[j] {
				lo[j] = c
			}
			if c > hi[j] {
				hi[j] = c
			}
		}
	}
	return lo, hi
}

// NumShards returns the number of shards.
func (sx *ShardedIndex) NumShards() int { return len(sx.shards) }

// Shard returns shard i's Index (local coordinates for grid shards — see
// ShardBounds for its placement). The Index must be treated as read-only.
func (sx *ShardedIndex) Shard(i int) *Index { return sx.shards[i] }

// ShardBounds returns shard i's inclusive bounding box in global
// coordinates and its global rank block [offset, offset+records).
func (sx *ShardedIndex) ShardBounds(i int) (lo, hi []int, offset, records int) {
	return append([]int(nil), sx.lo[i]...), append([]int(nil), sx.hi[i]...),
		sx.offset[i], sx.offset[i+1] - sx.offset[i]
}

// ShardOrigin returns the translation from shard i's local coordinates to
// global coordinates: grid shards are cells cut out of the global grid, so
// local coordinate c maps to c + origin; point-set shards carry global
// coordinates already and report a zero origin. Cluster workers use this
// to serve one shard in the global frame.
func (sx *ShardedIndex) ShardOrigin(i int) []int {
	return append([]int(nil), sx.origin[i]...)
}

// PointSet reports whether the index covers an explicit point set (true)
// or a full grid (false) — point-set shard bounding boxes may overlap, so
// distributed planners must treat shard ownership as a candidate set, not
// a partition.
func (sx *ShardedIndex) PointSet() bool { return sx.points }

// N returns the total number of indexed points across all shards.
func (sx *ShardedIndex) N() int { return sx.offset[len(sx.shards)] }

// Dims returns the per-dimension side lengths of the global grid (for
// point-set indexes, the bounding box of all points).
func (sx *ShardedIndex) Dims() []int { return append([]int(nil), sx.grid.Dims()...) }

// D returns the number of dimensions.
func (sx *ShardedIndex) D() int { return sx.grid.D() }

// RecordsPerPage returns the page capacity of the global rank space.
func (sx *ShardedIndex) RecordsPerPage() int { return sx.pager.RecordsPerPage() }

// NumPages returns the number of pages of the global rank space.
func (sx *ShardedIndex) NumPages() int { return sx.pager.NumPages() }

// Rank returns the global 1-D position of the point with the given
// coordinates: the owning shard's local rank plus the shard's rank offset.
// Errors mirror Index.Rank. Like Index.Rank it allocates nothing on
// success: the shard-local translation lives in a fixed stack buffer up to
// 8 dimensions and error paths never leak the coords slice.
//
//lpm:allocfree — error branches and the >8-dimension fallback excepted.
func (sx *ShardedIndex) Rank(coords ...int) (int, error) {
	if lc := sx.lc; lc != nil {
		// Mapped indexes: shard rank arrays live in the mapped region.
		// The shard's own Rank re-borrows the shared Lifecycle — a counter
		// increment, not a lock, so nesting is fine.
		if !lc.TryBorrow() {
			return 0, ErrIndexClosed
		}
		defer lc.EndBorrow()
	}
	d := sx.grid.D()
	if len(coords) != d {
		//lpm:allocok — error branch; success never reaches it.
		return 0, fmt.Errorf("spectrallpm: coordinate arity %d, want %d: %w", len(coords), d, ErrDimensionMismatch)
	}
	dims := sx.grid.Dims()
	for i, c := range coords {
		if c < 0 || c >= dims[i] {
			if !sx.points {
				//lpm:allocok — error branch; success never reaches it.
				return 0, fmt.Errorf("spectrallpm: coordinate %d outside [0,%d): %w", c, dims[i], ErrDimensionMismatch)
			}
			return 0, errPointNotIndexed(coords)
		}
	}
	var buf [8]int
	local := buf[:]
	if d > len(buf) {
		//lpm:allocok — >8-dimension fallback, documented above.
		local = make([]int, d)
	} else {
		local = local[:d]
	}
	for i := range sx.shards {
		if !boundsContain(sx.lo[i], sx.hi[i], coords) {
			continue
		}
		for j, c := range coords {
			local[j] = c - sx.origin[i][j]
		}
		r, err := sx.shards[i].Rank(local...)
		if err != nil {
			if sx.points && errors.Is(err, ErrPointNotIndexed) {
				continue // another shard's bounding box may also cover it
			}
			return 0, err
		}
		return r + sx.offset[i], nil
	}
	// Grid shards tile the grid, so only point sets reach here.
	return 0, errPointNotIndexed(coords)
}

// Point returns the coordinates of the point at the given global rank. The
// returned slice is freshly allocated. A rank outside [0, N) returns
// ErrRankOutOfRange.
func (sx *ShardedIndex) Point(rank int) ([]int, error) {
	if lc := sx.lc; lc != nil {
		if !lc.TryBorrow() {
			return nil, ErrIndexClosed
		}
		defer lc.EndBorrow()
	}
	if rank < 0 || rank >= sx.N() {
		return nil, fmt.Errorf("spectrallpm: rank %d outside [0,%d): %w", rank, sx.N(), ErrRankOutOfRange)
	}
	i := sort.SearchInts(sx.offset, rank+1) - 1
	p, err := sx.shards[i].Point(rank - sx.offset[i])
	if err != nil {
		return nil, err
	}
	for j := range p {
		p[j] += sx.origin[i][j]
	}
	return p, nil
}

//lpm:allocfree
func boundsContain(lo, hi, coords []int) bool {
	for j, c := range coords {
		if c < lo[j] || c > hi[j] {
			return false
		}
	}
	return true
}

// validateBox mirrors Index.validateBox over the global grid: full-grid
// sharded indexes require the box inside the grid with every side at least
// 1; point-set sharded indexes require only the right arity.
func (sx *ShardedIndex) validateBox(b Box) error {
	d := sx.grid.D()
	if len(b.Start) != d || len(b.Dims) != d {
		return fmt.Errorf("spectrallpm: box arity %d/%d, want %d: %w", len(b.Start), len(b.Dims), d, ErrDimensionMismatch)
	}
	if sx.points {
		return nil
	}
	dims := sx.grid.Dims()
	for i, st := range b.Start {
		if b.Dims[i] < 1 || st < 0 || st+b.Dims[i] > dims[i] {
			return fmt.Errorf("spectrallpm: box %v exceeds grid %v: %w", b, dims, ErrDimensionMismatch)
		}
	}
	return nil
}

// shardEngine adapts a ShardedIndex to the serving core's Engine (see
// internal/serve): the composite frame provider that plans a box against
// the shard bounds, gathers per-shard rank streams through the same
// single-index engine the shards serve with, and merges them into global
// rank order. The serving bodies live in the core — shard.go keeps only
// the planning and translation that is genuinely sharding-specific.
type shardEngine struct{ sx *ShardedIndex }

// CheckBox mirrors the single-index validation over the global grid:
// full-grid sharded indexes require the box inside the grid with every
// side at least 1; point-set sharded indexes require only the right arity.
//
//lpm:allocfree — the rejection branches excepted.
func (e shardEngine) CheckBox(b Box) error {
	sx := e.sx
	d := sx.grid.D()
	if len(b.Start) != d || len(b.Dims) != d {
		//lpm:allocok — error branch; a valid box never reaches it.
		return fmt.Errorf("spectrallpm: box arity %d/%d, want %d: %w", len(b.Start), len(b.Dims), d, ErrDimensionMismatch)
	}
	if sx.points {
		return nil
	}
	dims := sx.grid.Dims()
	for i, st := range b.Start {
		if b.Dims[i] < 1 || st < 0 || st+b.Dims[i] > dims[i] {
			//lpm:allocok — error branch; a valid box never reaches it.
			return fmt.Errorf("spectrallpm: box %v exceeds grid %v: %w", b, dims, ErrDimensionMismatch)
		}
	}
	return nil
}

// AppendBoxRanks appends the global ranks of the indexed points inside the
// already-validated box to dst, in ascending global rank order: the
// planner clips the box against each shard's bounds, intersected shards
// answer locally through the single-index engine, local ranks shift by the
// shard's offset, and the per-shard streams k-way-merge
// (storage.MergeSortedAppend — in practice the concatenation fast path,
// since shard rank blocks are disjoint and ascending). The planner's clip
// and concatenation scratch fields are disjoint from the fields the
// per-shard engines use, so one Scratch serves both levels.
//
//lpm:ctxaware — each shard's engine polls; a cancelled shard aborts the plan
//lpm:allocfree
func (e shardEngine) AppendBoxRanks(dst []int, start, dims []int, sc *serve.Scratch) []int {
	sx := e.sx
	d := sx.grid.D()
	if cap(sc.CStart) < d {
		sc.CStart = make([]int, d)
		sc.CDims = make([]int, d)
	}
	sc.CStart, sc.CDims = sc.CStart[:d], sc.CDims[:d]
	sc.Tmp = sc.Tmp[:0]
	sc.Ends = sc.Ends[:0]
	for i := range sx.shards {
		if !shard.ClipBox(start, dims, sx.lo[i], sx.hi[i], sc.CStart, sc.CDims) {
			continue
		}
		for j := range sc.CStart {
			sc.CStart[j] -= sx.origin[i][j]
		}
		n0 := len(sc.Tmp)
		sc.Tmp = indexEngine{sx.shards[i]}.AppendBoxRanks(sc.Tmp, sc.CStart, sc.CDims, sc)
		if sc.Err != nil {
			// A cancelled shard invalidates the whole plan; the caller
			// discards dst on sc.Err, so skip the remaining shards.
			return dst
		}
		for j := n0; j < len(sc.Tmp); j++ {
			sc.Tmp[j] += sx.offset[i]
		}
		sc.Ends = append(sc.Ends, len(sc.Tmp))
	}
	// Build the stream views only after Tmp stops growing — earlier
	// appends may have reallocated it.
	sc.Streams = sc.Streams[:0]
	prev := 0
	//lpm:ctxok — O(shards) stream-view assembly, no per-record work
	for _, end := range sc.Ends {
		sc.Streams = append(sc.Streams, sc.Tmp[prev:end])
		prev = end
	}
	return storage.MergeSortedAppend(dst, sc.Streams)
}

// EmitCoords translates ascending GLOBAL ranks to global coordinates: the
// owning shard advances monotonically with the ranks (shard rank blocks
// ascend with shard order), so one forward cursor replaces a per-record
// binary search; the shard translates locally and the origin shifts the
// result into global coordinates in place.
//
//lpm:allocfree
func (e shardEngine) EmitCoords(ranks []int, coords []int, yield func(int, []int) bool) {
	sx := e.sx
	cur := 0
	for _, r := range ranks {
		for r >= sx.offset[cur+1] {
			cur++
		}
		sx.shards[cur].coordsAt(r-sx.offset[cur], coords)
		origin := sx.origin[cur]
		for j := range coords {
			coords[j] += origin[j]
		}
		if !yield(r, coords) {
			return
		}
	}
}

func (e shardEngine) Pager() *storage.Pager { return e.sx.pager }
func (e shardEngine) D() int                { return e.sx.grid.D() }
func (e shardEngine) Parallelism() int      { return e.sx.par }

// initCore arms the shared serving core — the last step of finishSharded
// on every construction path (BuildSharded, ReadSharded, OpenMappedSharded).
// OpenMappedSharded re-arms it after attaching the shared lifecycle.
func (sx *ShardedIndex) initCore() {
	sx.core = serve.NewCore(shardEngine{sx}, sx.lc)
}

// Close releases the mapped byte region backing a sharded index opened
// with OpenMappedSharded (all shard frames share one mapping and one
// Lifecycle). Like Index.Close it is safe against in-flight queries: the
// index latches closed, new queries fail with ErrIndexClosed, and the
// unmap waits for the last borrower — including queries issued directly
// against a Shard(i). No-op for built or materialized indexes; idempotent
// and goroutine-safe.
func (sx *ShardedIndex) Close() error {
	if sx.closeFn == nil {
		return nil
	}
	sx.closeOnce.Do(func() {
		if sx.lc != nil {
			sx.lc.CloseAndWait()
		}
		sx.closeErr = sx.closeFn()
	})
	return sx.closeErr
}

// Scan streams the points of a box query in GLOBAL 1-D rank order,
// consulting only the shards whose bounding boxes intersect the box. The
// contract is identical to Index.Scan: the coords buffer is reused between
// iterations, the sequence is single-use, an unconsumed sequence strands
// no rank scratch, and steady-state iteration allocates nothing.
//
//lpm:allocfree
func (sx *ShardedIndex) Scan(b Box) (iter.Seq2[int, []int], error) {
	return sx.core.Scan(b)
}

// ScanInto is Scan in callback form, sharing its iteration body — see
// Index.ScanInto.
//
//lpm:allocfree
func (sx *ShardedIndex) ScanInto(b Box, yield func(rank int, coords []int) bool) error {
	return sx.core.ScanInto(b, yield)
}

// ScanIntoContext is ScanInto under a request context — see
// Index.ScanIntoContext for the cancellation and closed-index contract.
//
//lpm:allocfree
func (sx *ShardedIndex) ScanIntoContext(ctx context.Context, b Box, yield func(rank int, coords []int) bool) error {
	return sx.core.ScanIntoCtx(ctx, b, yield)
}

// Pages returns the page-run plan of a box query over the GLOBAL rank
// space — runs may span shard boundaries when adjacent shards both match,
// which is exactly what the bisection-tree shard order arranges for.
func (sx *ShardedIndex) Pages(b Box) ([]PageRun, error) {
	return sx.core.PagesInto(b, nil)
}

// PagesInto is Pages appending to dst; with sufficient capacity it
// performs zero steady-state heap allocations.
//
//lpm:allocfree
func (sx *ShardedIndex) PagesInto(b Box, dst []PageRun) ([]PageRun, error) {
	return sx.core.PagesInto(b, dst)
}

// PagesIntoContext is PagesInto under a request context — see
// Index.ScanIntoContext for the cancellation and closed-index contract.
//
//lpm:allocfree
func (sx *ShardedIndex) PagesIntoContext(ctx context.Context, b Box, dst []PageRun) ([]PageRun, error) {
	return sx.core.PagesIntoCtx(ctx, b, dst)
}

// QueryIO returns the simulated I/O cost of a box query against the global
// rank space. It allocates nothing in steady state.
//
//lpm:allocfree
func (sx *ShardedIndex) QueryIO(b Box) (IOStats, error) {
	return sx.core.QueryIO(b)
}

// QueryIOContext is QueryIO under a request context — see
// Index.ScanIntoContext for the cancellation and closed-index contract.
//
//lpm:allocfree
func (sx *ShardedIndex) QueryIOContext(ctx context.Context, b Box) (IOStats, error) {
	return sx.core.QueryIOCtx(ctx, b)
}

// QueryBatch answers one QueryIO per box, fanning the slice across the
// index's parallelism — see Index.QueryBatch for the contract.
func (sx *ShardedIndex) QueryBatch(boxes []Box) ([]IOStats, error) {
	return sx.core.QueryBatch(boxes)
}

// QueryBatchContext is QueryBatch under a request context — see
// Index.QueryBatchContext.
func (sx *ShardedIndex) QueryBatchContext(ctx context.Context, boxes []Box) ([]IOStats, error) {
	return sx.core.QueryBatchCtx(ctx, boxes)
}
