module github.com/spectral-lpm/spectrallpm

go 1.24
