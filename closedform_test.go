// Oracle tests for the closed-form spectral order: the automatic
// default-grid fast path (zero eigensolves) must be pinned rank-for-rank to
// the eigensolver path, which stays reachable through WithSolverMethod.
package spectrallpm_test

import (
	"bytes"
	"context"
	"math"
	"slices"
	"strings"
	"testing"

	spectrallpm "github.com/spectral-lpm/spectrallpm"
)

// buildRanks returns the full rank permutation of a grid index.
func buildRanks(t testing.TB, opts ...spectrallpm.BuildOption) (*spectrallpm.Index, []int) {
	t.Helper()
	ix, err := spectrallpm.Build(context.Background(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	m := ix.Mapping()
	if m == nil {
		t.Fatal("grid index has no mapping")
	}
	return ix, append([]int(nil), m.Ranks()...)
}

// TestClosedFormOracle is the acceptance property: the closed-form path and
// the exact eigensolver produce identical rank permutations on rectangular,
// square, degenerate (1×n), and 3-D grids, across seeds.
func TestClosedFormOracle(t *testing.T) {
	cases := [][]int{
		{12, 5}, {5, 12}, {1, 9}, {9, 1},
		{8, 8}, {7, 7}, {16, 16},
		{4, 4, 2}, {3, 3, 3}, {5, 4, 3}, {2, 2, 2, 2},
	}
	for _, dims := range cases {
		for _, seed := range []int64{0, 7} {
			fast, fastRanks := buildRanks(t,
				spectrallpm.WithGrid(dims...), spectrallpm.WithSeed(seed))
			if fast.Solver() != spectrallpm.SolverClosedForm {
				t.Fatalf("dims %v: default build used solver %q, want %q",
					dims, fast.Solver(), spectrallpm.SolverClosedForm)
			}
			slow, slowRanks := buildRanks(t,
				spectrallpm.WithGrid(dims...), spectrallpm.WithSeed(seed),
				spectrallpm.WithSolverMethod(spectrallpm.MethodExact))
			if slow.Solver() != "" {
				t.Fatalf("dims %v: forced method still reports %q", dims, slow.Solver())
			}
			if !slices.Equal(fastRanks, slowRanks) {
				t.Fatalf("dims %v seed %d: closed-form ranks differ from exact solver\nclosed-form: %v\nsolver:      %v",
					dims, seed, fastRanks, slowRanks)
			}
			fl, sl := fast.Lambda2(), slow.Lambda2()
			if len(fl) != 1 || len(sl) != 1 || math.Abs(fl[0]-sl[0]) > 1e-7*(1+sl[0]) {
				t.Fatalf("dims %v: λ₂ closed-form %v, solver %v", dims, fl, sl)
			}
		}
	}
}

// TestClosedFormAppliesOnlyToDefaultBuilds: any option that changes the
// graph or the solve semantics must fall back to the eigensolver.
func TestClosedFormAppliesOnlyToDefaultBuilds(t *testing.T) {
	grid := []spectrallpm.BuildOption{spectrallpm.WithGrid(6, 4)}
	fallbacks := map[string]spectrallpm.BuildOption{
		"connectivity": spectrallpm.WithConnectivity(spectrallpm.Diagonal),
		"weights":      spectrallpm.WithEdgeWeights(func(u, v int) float64 { return 2 }),
		"affinity":     spectrallpm.WithAffinity(spectrallpm.AffinityEdge{U: 0, V: 23, Weight: 3}),
		"method":       spectrallpm.WithSolverMethod(spectrallpm.MethodInversePower),
		"degeneracy":   spectrallpm.WithDegeneracy(spectrallpm.DegeneracyRaw),
		"tolerance":    spectrallpm.WithSolver(spectrallpm.SolverOptions{Tol: 1e-7}),
	}
	for name, opt := range fallbacks {
		ix, err := spectrallpm.Build(context.Background(), append(grid[:1:1], opt)...)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ix.Solver() != "" {
			t.Errorf("%s: expected eigensolver fallback, got solver %q", name, ix.Solver())
		}
	}
	// Parallelism and seed keep the fast path.
	ix, err := spectrallpm.Build(context.Background(),
		spectrallpm.WithGrid(6, 4), spectrallpm.WithParallelism(2), spectrallpm.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if ix.Solver() != spectrallpm.SolverClosedForm {
		t.Errorf("parallelism/seed disabled the closed form: solver %q", ix.Solver())
	}
	// Nine tied longest axes exceed the mixing cap and fall back.
	dims9 := []int{2, 2, 2, 2, 2, 2, 2, 2, 2}
	ix, err = spectrallpm.Build(context.Background(), spectrallpm.WithGrid(dims9...))
	if err != nil {
		t.Fatal(err)
	}
	if ix.Solver() != "" {
		t.Errorf("9 tied axes should run the solver, got %q", ix.Solver())
	}
}

// TestClosedFormProvenancePersists: the solver field survives the codec
// round trip byte-stably, and eigensolver indexes keep omitting it (so
// pre-existing files stay bit-identical — the golden tests cover those).
func TestClosedFormProvenancePersists(t *testing.T) {
	ix, err := spectrallpm.Build(context.Background(),
		spectrallpm.WithGrid(4, 3), spectrallpm.WithPageSize(4))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"solver":"closed-form"`) {
		t.Fatalf("serialized index lacks closed-form provenance: %s", buf.String())
	}
	loaded, err := spectrallpm.ReadIndex(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Solver() != spectrallpm.SolverClosedForm {
		t.Fatalf("loaded solver %q", loaded.Solver())
	}
	var again bytes.Buffer
	if _, err := loaded.WriteTo(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatalf("round trip not bit-identical:\n  a: %s\n  b: %s", buf.Bytes(), again.Bytes())
	}

	solver, err := spectrallpm.Build(context.Background(),
		spectrallpm.WithGrid(4, 3), spectrallpm.WithSolverMethod(spectrallpm.MethodExact))
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if _, err := solver.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"solver"`) {
		t.Fatalf("eigensolver index should omit the solver field: %s", buf.String())
	}
}

// TestShardedBuildUsesClosedForm: per-shard builds of a default sharded
// grid go through the analytic engine too.
func TestShardedBuildUsesClosedForm(t *testing.T) {
	sx, err := spectrallpm.BuildSharded(context.Background(), 4,
		spectrallpm.WithGrid(16, 16), spectrallpm.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sx.NumShards(); i++ {
		if got := sx.Shard(i).Solver(); got != spectrallpm.SolverClosedForm {
			t.Fatalf("shard %d built with solver %q", i, got)
		}
	}
}

// FuzzClosedFormGridOrder fuzzes small grid shapes (including degenerate
// 1×n and square cases) asserting the closed-form order equals the exact
// eigensolver order rank-for-rank.
func FuzzClosedFormGridOrder(f *testing.F) {
	f.Add(uint8(1), uint8(7), uint8(1), uint8(1)) // 1×7
	f.Add(uint8(4), uint8(4), uint8(1), uint8(1)) // square
	f.Add(uint8(3), uint8(3), uint8(3), uint8(2)) // cube
	f.Add(uint8(6), uint8(2), uint8(5), uint8(2)) // 3-D rectangular
	f.Add(uint8(5), uint8(1), uint8(1), uint8(0)) // path
	f.Fuzz(func(t *testing.T, a, b, c, dsel uint8) {
		sides := []int{1 + int(a)%7, 1 + int(b)%7, 1 + int(c)%7}
		dims := sides[:1+int(dsel)%3]
		fastIx, fast := buildRanks(t, spectrallpm.WithGrid(dims...), spectrallpm.WithSeed(1))
		if fastIx.Solver() != spectrallpm.SolverClosedForm {
			// Without this guard a broken fast-path detection would make
			// the comparison a vacuous solver-vs-solver check.
			t.Fatalf("dims %v: default build used solver %q", dims, fastIx.Solver())
		}
		_, slow := buildRanks(t,
			spectrallpm.WithGrid(dims...), spectrallpm.WithSeed(1),
			spectrallpm.WithSolverMethod(spectrallpm.MethodExact))
		if !slices.Equal(fast, slow) {
			t.Fatalf("dims %v: closed-form %v, solver %v", dims, fast, slow)
		}
	})
}
