package spectrallpm_test

import (
	"context"
	"errors"
	"sync"
	"testing"

	spectrallpm "github.com/spectral-lpm/spectrallpm"
)

func buildTestIndex(t testing.TB, opts ...spectrallpm.BuildOption) *spectrallpm.Index {
	t.Helper()
	ix, err := spectrallpm.Build(context.Background(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestBuildGridSpectral(t *testing.T) {
	ix := buildTestIndex(t, spectrallpm.WithGrid(8, 8))
	if ix.Name() != "spectral" || ix.N() != 64 || ix.D() != 2 {
		t.Fatalf("ix = %s/%d/%d-d", ix.Name(), ix.N(), ix.D())
	}
	if l2 := ix.Lambda2(); len(l2) != 1 || l2[0] <= 0 {
		t.Fatalf("lambda2 = %v", l2)
	}
	// The index agrees with the deprecated free-function path.
	m, err := spectrallpm.SpectralMapping(spectrallpm.MustGrid(8, 8), spectrallpm.SpectralConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 64; id++ {
		coords := ix.Mapping().Grid().Coords(id, nil)
		r, err := ix.Rank(coords...)
		if err != nil {
			t.Fatal(err)
		}
		if r != m.Rank(id) {
			t.Fatalf("vertex %d: index rank %d, mapping rank %d", id, r, m.Rank(id))
		}
	}
}

func TestBuildCurveAndRankPointRoundTrip(t *testing.T) {
	for _, name := range []string{"hilbert", "gray", "morton", "peano", "sweep", "snake", "diagonal"} {
		ix := buildTestIndex(t, spectrallpm.WithGrid(5, 7), spectrallpm.WithMapping(name))
		if ix.Name() != name {
			t.Fatalf("name = %q, want %q", ix.Name(), name)
		}
		if ix.Lambda2() != nil {
			t.Fatalf("%s: unexpected lambda2", name)
		}
		for r := 0; r < ix.N(); r++ {
			p, err := ix.Point(r)
			if err != nil {
				t.Fatal(err)
			}
			back, err := ix.Rank(p...)
			if err != nil {
				t.Fatal(err)
			}
			if back != r {
				t.Fatalf("%s: Point/Rank round trip %d -> %v -> %d", name, r, p, back)
			}
		}
	}
}

func TestBuildOptionValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := spectrallpm.Build(ctx); err == nil {
		t.Error("Build with no source accepted")
	}
	if _, err := spectrallpm.Build(ctx, spectrallpm.WithGrid(4, 4), spectrallpm.WithPoints([][]int{{0, 0}})); err == nil {
		t.Error("grid+points accepted")
	}
	if _, err := spectrallpm.Build(ctx, spectrallpm.WithGrid(4, 4), spectrallpm.WithMapping("nosuch")); !errors.Is(err, spectrallpm.ErrUnknownMapping) {
		t.Errorf("unknown mapping err = %v", err)
	}
	if _, err := spectrallpm.Build(ctx, spectrallpm.WithPoints([][]int{{0, 0}, {0, 1}}), spectrallpm.WithMapping("hilbert")); !errors.Is(err, spectrallpm.ErrUnknownMapping) {
		t.Errorf("curve over points err = %v", err)
	}
	if _, err := spectrallpm.Build(ctx, spectrallpm.WithGrid(2, 2), spectrallpm.WithRanks([]int{0, 1, 2})); !errors.Is(err, spectrallpm.ErrDimensionMismatch) {
		t.Errorf("short ranks err = %v", err)
	}
	if _, err := spectrallpm.Build(ctx, spectrallpm.WithGrid(2, 2), spectrallpm.WithRanks([]int{0, 1, 2, 2})); !errors.Is(err, spectrallpm.ErrNotPermutation) {
		t.Errorf("dup ranks err = %v", err)
	}
	if _, err := spectrallpm.Build(ctx, spectrallpm.WithGrid(4, 4), spectrallpm.WithPageSize(0)); err == nil {
		t.Error("page size 0 accepted")
	}
	if _, err := spectrallpm.Build(ctx, spectrallpm.WithPoints([][]int{{0, 0}, {0, -1}})); !errors.Is(err, spectrallpm.ErrDimensionMismatch) {
		t.Errorf("negative point err = %v", err)
	}
	if _, err := spectrallpm.Build(ctx, spectrallpm.WithPoints([][]int{{0, 0}, {0, 0}})); err == nil {
		t.Error("duplicate points accepted")
	}
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := spectrallpm.Build(canceled, spectrallpm.WithGrid(8, 8)); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled ctx err = %v", err)
	}
	// Paths that never feed graph-shaping options into a solve reject them
	// instead of silently ignoring them (and, for spectral provenance,
	// persisting metadata the solve never used).
	pts := [][]int{{0, 0}, {0, 1}}
	if _, err := spectrallpm.Build(ctx, spectrallpm.WithPoints(pts), spectrallpm.WithConnectivity(spectrallpm.Diagonal)); err == nil {
		t.Error("connectivity over points accepted")
	}
	if _, err := spectrallpm.Build(ctx, spectrallpm.WithPoints(pts), spectrallpm.WithEdgeWeights(func(u, v int) float64 { return 2 })); err == nil {
		t.Error("edge weights over points accepted")
	}
	if _, err := spectrallpm.Build(ctx, spectrallpm.WithGrid(4, 4), spectrallpm.WithMapping("hilbert"),
		spectrallpm.WithAffinity(spectrallpm.AffinityEdge{U: 0, V: 15, Weight: 9})); err == nil {
		t.Error("affinity over a curve mapping accepted")
	}
	if _, err := spectrallpm.Build(ctx, spectrallpm.WithGrid(4, 4), spectrallpm.WithMapping("hilbert"),
		spectrallpm.WithConnectivity(spectrallpm.Diagonal)); err == nil {
		t.Error("diagonal connectivity over a curve mapping accepted")
	}
	if _, err := spectrallpm.Build(ctx, spectrallpm.WithGrid(2, 2), spectrallpm.WithRanks([]int{0, 1, 2, 3}),
		spectrallpm.WithEdgeWeights(func(u, v int) float64 { return 2 })); err == nil {
		t.Error("edge weights over WithRanks accepted")
	}
	// Affinity over points is the §4 extension and stays allowed.
	if _, err := spectrallpm.Build(ctx, spectrallpm.WithPoints(pts),
		spectrallpm.WithAffinity(spectrallpm.AffinityEdge{U: 0, V: 1, Weight: 2})); err != nil {
		t.Errorf("affinity over points rejected: %v", err)
	}
}

func TestWithMappingIsCaseInsensitive(t *testing.T) {
	// Mixed case must hit the same dispatch branch as lowercase — in
	// particular "Spectral" must take the spectral path (solver options
	// honored, λ₂ recorded), not the curve fallback.
	upper := buildTestIndex(t, spectrallpm.WithGrid(6, 6), spectrallpm.WithMapping("Spectral"), spectrallpm.WithSeed(4))
	lower := buildTestIndex(t, spectrallpm.WithGrid(6, 6), spectrallpm.WithMapping("spectral"), spectrallpm.WithSeed(4))
	if len(upper.Lambda2()) != 1 {
		t.Fatalf("mixed-case spectral lost lambda2: %v", upper.Lambda2())
	}
	for r := 0; r < lower.N(); r++ {
		pu, err1 := upper.Point(r)
		pl, err2 := lower.Point(r)
		if err1 != nil || err2 != nil || pu[0] != pl[0] || pu[1] != pl[1] {
			t.Fatalf("rank %d: %v vs %v (%v, %v)", r, pu, pl, err1, err2)
		}
	}
	hilbert := buildTestIndex(t, spectrallpm.WithGrid(4, 4), spectrallpm.WithMapping("HILBERT"))
	if hilbert.Name() != "hilbert" {
		t.Fatalf("name = %q", hilbert.Name())
	}
}

func TestIndexServingErrors(t *testing.T) {
	ix := buildTestIndex(t, spectrallpm.WithGrid(4, 4), spectrallpm.WithMapping("hilbert"))
	if _, err := ix.Rank(1); !errors.Is(err, spectrallpm.ErrDimensionMismatch) {
		t.Errorf("bad arity err = %v", err)
	}
	if _, err := ix.Rank(1, 9); !errors.Is(err, spectrallpm.ErrDimensionMismatch) {
		t.Errorf("out-of-grid err = %v", err)
	}
	if _, err := ix.Point(-1); !errors.Is(err, spectrallpm.ErrRankOutOfRange) {
		t.Errorf("negative rank err = %v", err)
	}
	if _, err := ix.Point(16); !errors.Is(err, spectrallpm.ErrRankOutOfRange) {
		t.Errorf("big rank err = %v", err)
	}
	if _, err := ix.Scan(spectrallpm.Box{Start: []int{3, 3}, Dims: []int{2, 2}}); !errors.Is(err, spectrallpm.ErrDimensionMismatch) {
		t.Errorf("overflowing box err = %v", err)
	}
	if _, err := ix.Pages(spectrallpm.Box{Start: []int{0}, Dims: []int{1}}); !errors.Is(err, spectrallpm.ErrDimensionMismatch) {
		t.Errorf("bad box arity err = %v", err)
	}
	if _, err := ix.RankBatch([][]int{{0, 0}, {9, 9}}, nil); !errors.Is(err, spectrallpm.ErrDimensionMismatch) {
		t.Errorf("bad batch err = %v", err)
	}
}

func TestIndexScanStreamsBoxInRankOrder(t *testing.T) {
	ix := buildTestIndex(t, spectrallpm.WithGrid(6, 6), spectrallpm.WithMapping("hilbert"), spectrallpm.WithPageSize(4))
	box := spectrallpm.Box{Start: []int{1, 2}, Dims: []int{3, 2}}
	seq, err := ix.Scan(box)
	if err != nil {
		t.Fatal(err)
	}
	var got int
	prev := -1
	for r, p := range seq {
		if r <= prev {
			t.Fatalf("ranks not strictly increasing: %d after %d", r, prev)
		}
		prev = r
		if p[0] < 1 || p[0] >= 4 || p[1] < 2 || p[1] >= 4 {
			t.Fatalf("point %v outside box", p)
		}
		want, err := ix.Rank(p...)
		if err != nil || want != r {
			t.Fatalf("rank mismatch at %v: %d vs %d (%v)", p, r, want, err)
		}
		got++
	}
	if got != box.Volume() {
		t.Fatalf("scanned %d points, want %d", got, box.Volume())
	}

	// The page plan covers exactly the scanned ranks' pages and agrees
	// with QueryIO.
	runs, err := ix.Pages(box)
	if err != nil {
		t.Fatal(err)
	}
	io, err := ix.QueryIO(box)
	if err != nil {
		t.Fatal(err)
	}
	var planned int
	for i, run := range runs {
		if run.Pages < 1 {
			t.Fatalf("empty run %+v", run)
		}
		if i > 0 && runs[i-1].Start+runs[i-1].Pages >= run.Start {
			t.Fatalf("runs not disjoint/sorted: %+v", runs)
		}
		planned += run.Pages
	}
	if planned != io.Pages || len(runs) != io.Seeks {
		t.Fatalf("plan %+v disagrees with stats %+v", runs, io)
	}
}

func TestIndexRankBatchReusesDst(t *testing.T) {
	ix := buildTestIndex(t, spectrallpm.WithGrid(4, 4), spectrallpm.WithMapping("sweep"))
	coords := [][]int{{0, 0}, {1, 2}, {3, 3}}
	dst := make([]int, 0, 16)
	out, err := ix.RankBatch(coords, dst)
	if err != nil {
		t.Fatal(err)
	}
	if &out[:1][0] != &dst[:1][0] {
		t.Error("RankBatch reallocated despite sufficient capacity")
	}
	if len(out) != 3 || out[0] != 0 || out[1] != 6 || out[2] != 15 {
		t.Fatalf("batch = %v", out)
	}
	// Appends after existing elements.
	out2, err := ix.RankBatch(coords[:1], out)
	if err != nil {
		t.Fatal(err)
	}
	if len(out2) != 4 || out2[3] != 0 {
		t.Fatalf("append batch = %v", out2)
	}
}

func TestBuildPointSetIndex(t *testing.T) {
	// An L-shaped point set: spectral order exists, curves don't apply.
	points := [][]int{{0, 0}, {0, 1}, {0, 2}, {1, 0}, {2, 0}}
	ix := buildTestIndex(t, spectrallpm.WithPoints(points), spectrallpm.WithSeed(1), spectrallpm.WithPageSize(2))
	if ix.N() != len(points) {
		t.Fatalf("N = %d", ix.N())
	}
	if dims := ix.Dims(); dims[0] != 3 || dims[1] != 3 {
		t.Fatalf("bounding dims = %v", dims)
	}
	if ix.Mapping() != nil {
		t.Fatal("point-set index leaked a grid mapping")
	}
	seen := make(map[int]bool)
	for _, p := range points {
		r, err := ix.Rank(p...)
		if err != nil {
			t.Fatal(err)
		}
		if r < 0 || r >= ix.N() || seen[r] {
			t.Fatalf("rank %d invalid or duplicated", r)
		}
		seen[r] = true
		back, err := ix.Point(r)
		if err != nil {
			t.Fatal(err)
		}
		if back[0] != p[0] || back[1] != p[1] {
			t.Fatalf("Point(%d) = %v, want %v", r, back, p)
		}
	}
	// Unindexed points answer ErrPointNotIndexed, in and out of the box.
	for _, p := range [][]int{{1, 1}, {2, 2}, {40, 40}} {
		if _, err := ix.Rank(p...); !errors.Is(err, spectrallpm.ErrPointNotIndexed) {
			t.Errorf("Rank(%v) err = %v", p, err)
		}
	}
	// Scan matches only indexed points; boxes may exceed the bounding box.
	seq, err := ix.Scan(spectrallpm.Box{Start: []int{0, 0}, Dims: []int{100, 1}})
	if err != nil {
		t.Fatal(err)
	}
	var col0 int
	for range seq {
		col0++
	}
	if col0 != 3 {
		t.Fatalf("scan matched %d points, want 3", col0)
	}
	if _, err := ix.Pages(spectrallpm.Box{Start: []int{0, 0}, Dims: []int{3, 3}}); err != nil {
		t.Fatal(err)
	}
}

// TestIndexConcurrentQueries hammers one Index from many goroutines; run
// with -race to verify the documented concurrency contract.
func TestIndexConcurrentQueries(t *testing.T) {
	ix := buildTestIndex(t, spectrallpm.WithGrid(12, 12), spectrallpm.WithSeed(1), spectrallpm.WithPageSize(8))
	const workers = 16
	const iters = 200
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dst := make([]int, 0, 64)
			for i := 0; i < iters; i++ {
				x, y := (w+i)%12, (w*i)%12
				if _, err := ix.Rank(x, y); err != nil {
					errCh <- err
					return
				}
				if _, err := ix.Point((w + i) % ix.N()); err != nil {
					errCh <- err
					return
				}
				var err error
				dst, err = ix.RankBatch([][]int{{x, y}, {y, x}}, dst[:0])
				if err != nil {
					errCh <- err
					return
				}
				box := spectrallpm.Box{Start: []int{x % 8, y % 8}, Dims: []int{3, 3}}
				seq, err := ix.Scan(box)
				if err != nil {
					errCh <- err
					return
				}
				n := 0
				for range seq {
					n++
				}
				if n != 9 {
					errCh <- errors.New("short scan")
					return
				}
				if _, err := ix.Pages(box); err != nil {
					errCh <- err
					return
				}
				if _, err := ix.QueryIO(box); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

func TestIndexWithAffinityPullsPairTogether(t *testing.T) {
	grid := []int{10, 10}
	base := buildTestIndex(t, spectrallpm.WithGrid(grid...), spectrallpm.WithSeed(1))
	u := []int{0, 0}
	v := []int{0, 9}
	g := spectrallpm.MustGrid(grid...)
	tuned := buildTestIndex(t, spectrallpm.WithGrid(grid...), spectrallpm.WithSeed(1),
		spectrallpm.WithAffinity(spectrallpm.AffinityEdge{U: g.ID(u), V: g.ID(v), Weight: 30}))
	gap := func(ix *spectrallpm.Index) int {
		ru, err := ix.Rank(u...)
		if err != nil {
			t.Fatal(err)
		}
		rv, err := ix.Rank(v...)
		if err != nil {
			t.Fatal(err)
		}
		if ru > rv {
			return ru - rv
		}
		return rv - ru
	}
	if gb, gt := gap(base), gap(tuned); gt >= gb {
		t.Fatalf("affinity did not shrink the gap: base %d, tuned %d", gb, gt)
	}
}
