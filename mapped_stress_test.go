package spectrallpm_test

import (
	"errors"
	"runtime"
	"slices"
	"sync"
	"testing"

	spectrallpm "github.com/spectral-lpm/spectrallpm"
)

// TestOpenMappedConcurrentServing hammers one mapped index from
// GOMAXPROCS-or-more goroutines mixing every serving surface — Scan,
// ScanInto, QueryIO, Rank, Pages — against answers precomputed serially
// from the in-memory index the file was written from. Every query path
// checks rank scratch in and out of the shared pools, so this is the test
// the race detector needs to prove the borrowed mmap frame and the pooled
// serving core are safe under concurrent load; it also pins the drain →
// Close → second-Close shutdown sequence the package documents.
func TestOpenMappedConcurrentServing(t *testing.T) {
	built := buildTestIndex(t,
		spectrallpm.WithGrid(16, 16), spectrallpm.WithMapping("hilbert"), spectrallpm.WithPageSize(8))
	mapped, err := spectrallpm.OpenMapped(writeV2File(t, built))
	if err != nil {
		t.Fatal(err)
	}

	// One box per prospective worker, clipped inside the grid, answered
	// serially up front by the owned index.
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	type expected struct {
		box   spectrallpm.Box
		ranks []int
		pages []spectrallpm.PageRun
		io    spectrallpm.IOStats
	}
	exps := make([]expected, workers)
	for w := range exps {
		e := &exps[w]
		e.box = spectrallpm.Box{
			Start: []int{w % 8, (w * 3) % 8},
			Dims:  []int{1 + w%5, 1 + (w/2)%5},
		}
		if err := built.ScanInto(e.box, func(rank int, _ []int) bool {
			e.ranks = append(e.ranks, rank)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if e.pages, err = built.Pages(e.box); err != nil {
			t.Fatal(err)
		}
		if e.io, err = built.QueryIO(e.box); err != nil {
			t.Fatal(err)
		}
	}
	points := make([][]int, built.N())
	for r := range points {
		if points[r], err = built.Point(r); err != nil {
			t.Fatal(err)
		}
	}

	const rounds = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := &exps[w]
			other := &exps[(w+1)%workers]
			got := make([]int, 0, len(mine.ranks))
			for i := 0; i < rounds; i++ {
				switch i % 5 {
				case 0: // Scan, consuming the single-use sequence
					seq, err := mapped.Scan(mine.box)
					if err != nil {
						t.Error(err)
						return
					}
					got = got[:0]
					for rank := range seq {
						got = append(got, rank)
					}
					if !slices.Equal(got, mine.ranks) {
						t.Errorf("worker %d round %d: Scan ranks %v, want %v", w, i, got, mine.ranks)
						return
					}
				case 1: // ScanInto over a box shared with another worker
					got = got[:0]
					if err := mapped.ScanInto(other.box, func(rank int, _ []int) bool {
						got = append(got, rank)
						return true
					}); err != nil {
						t.Error(err)
						return
					}
					if !slices.Equal(got, other.ranks) {
						t.Errorf("worker %d round %d: ScanInto ranks %v, want %v", w, i, got, other.ranks)
						return
					}
				case 2: // QueryIO
					io, err := mapped.QueryIO(mine.box)
					if err != nil {
						t.Error(err)
						return
					}
					if io != mine.io {
						t.Errorf("worker %d round %d: QueryIO %+v, want %+v", w, i, io, mine.io)
						return
					}
				case 3: // Rank over the whole point table
					for r := (w + i) % 16; r < len(points); r += 16 {
						rr, err := mapped.Rank(points[r]...)
						if err != nil {
							t.Error(err)
							return
						}
						if rr != r {
							t.Errorf("worker %d round %d: Rank(%v) = %d, want %d", w, i, points[r], rr, r)
							return
						}
					}
				case 4: // Pages
					runs, err := mapped.Pages(mine.box)
					if err != nil {
						t.Error(err)
						return
					}
					if len(runs) != len(mine.pages) {
						t.Errorf("worker %d round %d: %d page runs, want %d", w, i, len(runs), len(mine.pages))
						return
					}
					for j := range runs {
						if runs[j] != mine.pages[j] {
							t.Errorf("worker %d round %d: page run %d = %+v, want %+v", w, i, j, runs[j], mine.pages[j])
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// Drain complete: the mapped region must unmap cleanly, and a second
	// Close must stay a no-op.
	if err := mapped.Close(); err != nil {
		t.Fatal(err)
	}
	if err := mapped.Close(); err != nil {
		t.Fatal("Close is not idempotent:", err)
	}
}

// TestOpenMappedCloseUnderLoad closes a mapped index while queries are in
// full flight. The borrow count must hold the unmap back until the last
// in-flight query releases, and every query must either answer correctly
// or fail with ErrIndexClosed — never a torn read of unmapped bytes.
func TestOpenMappedCloseUnderLoad(t *testing.T) {
	built := buildTestIndex(t,
		spectrallpm.WithGrid(16, 16), spectrallpm.WithMapping("hilbert"), spectrallpm.WithPageSize(8))
	path := writeV2File(t, built)

	box := spectrallpm.Box{Start: []int{2, 3}, Dims: []int{5, 4}}
	var want []int
	if err := built.ScanInto(box, func(rank int, _ []int) bool {
		want = append(want, rank)
		return true
	}); err != nil {
		t.Fatal(err)
	}

	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	const cycles = 20
	for c := 0; c < cycles; c++ {
		mapped, err := spectrallpm.OpenMapped(path)
		if err != nil {
			t.Fatal(err)
		}
		var started sync.WaitGroup // every worker lands one good query pre-Close
		var wg sync.WaitGroup
		started.Add(workers)
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				got := make([]int, 0, len(want))
				first := true
				landed := func() {
					if first {
						first = false
						started.Done()
					}
				}
				defer landed() // never strand started.Wait on an early error
				for {
					got = got[:0]
					err := mapped.ScanInto(box, func(rank int, _ []int) bool {
						got = append(got, rank)
						return true
					})
					if errors.Is(err, spectrallpm.ErrIndexClosed) {
						return // closed under us — the only acceptable failure
					}
					if err != nil {
						t.Errorf("worker %d: %v", w, err)
						return
					}
					if !slices.Equal(got, want) {
						t.Errorf("worker %d: ranks %v, want %v", w, got, want)
						return
					}
					landed()
				}
			}(w)
		}
		started.Wait() // close only once load is provably in flight
		if err := mapped.Close(); err != nil {
			t.Fatalf("cycle %d: Close under load: %v", c, err)
		}
		wg.Wait()
		if _, err := mapped.Rank(0, 0); !errors.Is(err, spectrallpm.ErrIndexClosed) {
			t.Fatalf("cycle %d: Rank after Close = %v, want ErrIndexClosed", c, err)
		}
	}
}
