package spectrallpm_test

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	spectrallpm "github.com/spectral-lpm/spectrallpm"
)

// writeV2File persists ix in the v2 binary format under t.TempDir.
func writeV2File(t testing.TB, ix *spectrallpm.Index) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "index.slpm2")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.WriteToV2(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// requireSameServing checks two indexes answer identically, rank for rank
// and metadata for metadata.
func requireSameServing(t *testing.T, want, got *spectrallpm.Index) {
	t.Helper()
	if got.N() != want.N() || got.Name() != want.Name() || got.RecordsPerPage() != want.RecordsPerPage() ||
		got.Solver() != want.Solver() || got.D() != want.D() {
		t.Fatalf("loaded index differs: %s/%d/%d vs %s/%d/%d",
			got.Name(), got.N(), got.RecordsPerPage(), want.Name(), want.N(), want.RecordsPerPage())
	}
	wl, gl := want.Lambda2(), got.Lambda2()
	if len(wl) != len(gl) {
		t.Fatalf("lambda2 arity %d vs %d", len(gl), len(wl))
	}
	for i := range wl {
		if wl[i] != gl[i] {
			t.Fatalf("lambda2[%d] = %v, want %v", i, gl[i], wl[i])
		}
	}
	for r := 0; r < want.N(); r++ {
		p, err := want.Point(r)
		if err != nil {
			t.Fatal(err)
		}
		rr, err := got.Rank(p...)
		if err != nil {
			t.Fatal(err)
		}
		if rr != r {
			t.Fatalf("rank of %v = %d, want %d", p, rr, r)
		}
	}
}

// v2TestIndexes covers both kinds and both construction flavors: grid
// (closed-form and curve), point set, and the empty point set only the
// codec path can produce.
func v2TestIndexes(t *testing.T) map[string]*spectrallpm.Index {
	t.Helper()
	empty, err := spectrallpm.ReadIndex(strings.NewReader(
		`{"format":"spectrallpm-index","version":1,"name":"spectral","dims":[1,1],"records_per_page":4,"points":[],"rank":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*spectrallpm.Index{
		"grid_hilbert": buildTestIndex(t,
			spectrallpm.WithGrid(4, 4), spectrallpm.WithMapping("hilbert"), spectrallpm.WithPageSize(4)),
		"grid_spectral": buildTestIndex(t,
			spectrallpm.WithGrid(8, 8), spectrallpm.WithSeed(7), spectrallpm.WithPageSize(8)),
		"points_l": buildTestIndex(t,
			spectrallpm.WithPoints([][]int{{0, 0}, {0, 1}, {0, 2}, {1, 0}, {2, 0}}), spectrallpm.WithSeed(2)),
		"points_empty": empty,
	}
}

// TestIndexV2GoldenFormat pins the v2 binary serialization bit-for-bit,
// exactly as the v1 golden test does — the files double as the fuzz seeds.
func TestIndexV2GoldenFormat(t *testing.T) {
	golden := map[string]*spectrallpm.Index{
		"index_v2_hilbert_4x4.golden": buildTestIndex(t,
			spectrallpm.WithGrid(4, 4), spectrallpm.WithMapping("hilbert"), spectrallpm.WithPageSize(4)),
		"index_v2_points_k2.golden": buildTestIndex(t,
			spectrallpm.WithPoints([][]int{{0, 0}, {0, 1}}), spectrallpm.WithPageSize(2)),
	}
	for _, name := range sortedKeys(golden) {
		ix := golden[name]
		t.Run(name, func(t *testing.T) {
			path := filepath.Join("testdata", name)
			var buf bytes.Buffer
			n, err := ix.WriteToV2(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if n != int64(buf.Len()) {
				t.Fatalf("WriteToV2 reported %d bytes, wrote %d", n, buf.Len())
			}
			if *updateGolden {
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("v2 serialization drifted from golden file %s (%d vs %d bytes)", path, buf.Len(), len(want))
			}
		})
	}
}

// TestIndexV2RoundTrip drives WriteToV2 through both read paths — the
// materializing reader and the mapped open — and requires each loaded
// index to serve rank-for-rank identically and to re-serialize to the
// exact same bytes (including a second generation from the mapped form,
// which proves the borrowed frame carries every bit the writer needs).
func TestIndexV2RoundTrip(t *testing.T) {
	indexes := v2TestIndexes(t)
	for _, name := range sortedKeys(indexes) {
		ix := indexes[name]
		t.Run(name, func(t *testing.T) {
			var a bytes.Buffer
			if _, err := ix.WriteToV2(&a); err != nil {
				t.Fatal(err)
			}
			read, err := spectrallpm.ReadIndexV2(bytes.NewReader(a.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			requireSameServing(t, ix, read)

			mapped, err := spectrallpm.OpenMapped(writeV2File(t, ix))
			if err != nil {
				t.Fatal(err)
			}
			requireSameServing(t, ix, mapped)
			var b bytes.Buffer
			if _, err := mapped.WriteToV2(&b); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Errorf("mapped index re-serializes differently (%d vs %d bytes)", b.Len(), a.Len())
			}
			if err := mapped.Close(); err != nil {
				t.Fatal(err)
			}
			if err := mapped.Close(); err != nil {
				t.Fatal("Close is not idempotent:", err)
			}
		})
	}
}

// TestCrossVersionV1ToV2 is the compatibility property: every v1 golden
// file in testdata, plus freshly built grid and point-set flavors, must
// survive read-v1 → write-v2 → OpenMapped rank-for-rank identical — and
// the mapped index must write v1 bytes identical to what the v1 index
// writes, so the two formats are interchangeable projections of one index.
func TestCrossVersionV1ToV2(t *testing.T) {
	cases := map[string][]byte{}
	goldens, err := filepath.Glob(filepath.Join("testdata", "index_v1_*.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if len(goldens) == 0 {
		t.Fatal("no v1 golden files found")
	}
	for _, path := range goldens {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		cases[filepath.Base(path)] = data
	}
	v2indexes := v2TestIndexes(t)
	for _, name := range sortedKeys(v2indexes) {
		ix := v2indexes[name]
		var buf bytes.Buffer
		if _, err := ix.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		cases[name] = buf.Bytes()
	}
	for _, name := range sortedKeys(cases) {
		v1bytes := cases[name]
		t.Run(name, func(t *testing.T) {
			v1, err := spectrallpm.ReadIndex(bytes.NewReader(v1bytes))
			if err != nil {
				t.Fatal(err)
			}
			mapped, err := spectrallpm.OpenMapped(writeV2File(t, v1))
			if err != nil {
				t.Fatal(err)
			}
			defer mapped.Close()
			requireSameServing(t, v1, mapped)
			var back bytes.Buffer
			if _, err := mapped.WriteTo(&back); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(back.Bytes(), v1bytes) {
				t.Errorf("v1→v2→v1 not bit-identical:\n got: %s\nwant: %s", back.Bytes(), v1bytes)
			}
		})
	}
}

// TestShardedV2RoundTrip drives the sharded container through both read
// paths for both kinds. The v1 serialization of the reloaded index must
// reproduce the original's v1 bytes — state-for-state equality in one
// comparison.
func TestShardedV2RoundTrip(t *testing.T) {
	ctx := context.Background()
	grid, err := spectrallpm.BuildSharded(ctx, 4, spectrallpm.WithGrid(8, 8), spectrallpm.WithSeed(1), spectrallpm.WithPageSize(4))
	if err != nil {
		t.Fatal(err)
	}
	points, err := spectrallpm.BuildSharded(ctx, 2,
		spectrallpm.WithPoints([][]int{{0, 0}, {0, 1}, {5, 5}, {5, 6}, {9, 0}}), spectrallpm.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	sharded := map[string]*spectrallpm.ShardedIndex{"grid": grid, "points": points}
	for _, name := range sortedKeys(sharded) {
		sx := sharded[name]
		t.Run(name, func(t *testing.T) {
			var v1 bytes.Buffer
			if _, err := sx.WriteTo(&v1); err != nil {
				t.Fatal(err)
			}
			var v2 bytes.Buffer
			if _, err := sx.WriteToV2(&v2); err != nil {
				t.Fatal(err)
			}
			check := func(loaded *spectrallpm.ShardedIndex) {
				t.Helper()
				if loaded.N() != sx.N() || loaded.NumShards() != sx.NumShards() {
					t.Fatalf("loaded %d records / %d shards, want %d / %d",
						loaded.N(), loaded.NumShards(), sx.N(), sx.NumShards())
				}
				var back bytes.Buffer
				if _, err := loaded.WriteTo(&back); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(back.Bytes(), v1.Bytes()) {
					t.Error("reloaded sharded index serializes v1 differently")
				}
				for r := 0; r < sx.N(); r++ {
					p, err := sx.Point(r)
					if err != nil {
						t.Fatal(err)
					}
					rr, err := loaded.Rank(p...)
					if err != nil {
						t.Fatal(err)
					}
					if rr != r {
						t.Fatalf("rank of %v = %d, want %d", p, rr, r)
					}
				}
			}
			read, err := spectrallpm.ReadShardedV2(bytes.NewReader(v2.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			check(read)

			path := filepath.Join(t.TempDir(), "sharded.slpm2")
			if err := os.WriteFile(path, v2.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			mapped, err := spectrallpm.OpenMappedSharded(path)
			if err != nil {
				t.Fatal(err)
			}
			check(mapped)
			if err := mapped.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestOpenIndexAutoDetect sniffs the magic bytes: a v2 file opens mapped,
// a v1 file falls back to the JSON reader, and a sharded v2 file is
// redirected with a useful error.
func TestOpenIndexAutoDetect(t *testing.T) {
	ix := buildTestIndex(t, spectrallpm.WithGrid(4, 4), spectrallpm.WithMapping("gray"), spectrallpm.WithPageSize(4))
	dir := t.TempDir()

	v1path := filepath.Join(dir, "index.v1")
	f, err := os.Create(v1path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	v2path := writeV2File(t, ix)

	byVersion := map[string]string{"v1": v1path, "v2": v2path}
	for _, name := range sortedKeys(byVersion) {
		path := byVersion[name]
		got, err := spectrallpm.OpenIndex(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		requireSameServing(t, ix, got)
		if err := got.Close(); err != nil {
			t.Fatal(err)
		}
	}

	sx, err := spectrallpm.BuildSharded(context.Background(), 2, spectrallpm.WithGrid(4, 4), spectrallpm.WithPageSize(4))
	if err != nil {
		t.Fatal(err)
	}
	spath := filepath.Join(dir, "sharded.v2")
	sf, err := os.Create(spath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sx.WriteToV2(sf); err != nil {
		t.Fatal(err)
	}
	sf.Close()
	if _, err := spectrallpm.OpenIndex(spath); err == nil || !strings.Contains(err.Error(), "OpenMappedSharded") {
		t.Fatalf("sharded file through OpenIndex: err = %v", err)
	}
}

// TestOpenMappedRejectsCorrupt flips, truncates, and extends bytes across
// every structural region of a v2 file and requires the typed corruption
// error from the real mapped open — never a panic, never acceptance.
func TestOpenMappedRejectsCorrupt(t *testing.T) {
	ix := buildTestIndex(t, spectrallpm.WithGrid(4, 4), spectrallpm.WithMapping("hilbert"), spectrallpm.WithPageSize(4))
	var buf bytes.Buffer
	if _, err := ix.WriteToV2(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	mutate := func(off int, b byte) []byte {
		bad := append([]byte(nil), good...)
		bad[off] ^= b
		return bad
	}
	cases := map[string][]byte{
		"bad magic":            mutate(0, 0xff),
		"bad kind":             mutate(8, 0x02),
		"bad section count":    mutate(12, 0x20),
		"bad table crc":        mutate(16, 0x01),
		"reserved header":      mutate(20, 0x01),
		"bad section type":     mutate(24, 0x07),
		"bad section offset":   mutate(24+8, 0x01),
		"bad section length":   mutate(24+16, 0x08),
		"payload flip":         mutate(len(good)-4, 0x01),
		"meta flip":            mutate(24+4*32, 0x01),
		"truncated header":     good[:12],
		"truncated table":      good[:40],
		"truncated payload":    good[:len(good)-8],
		"trailing garbage":     append(append([]byte(nil), good...), 0, 0, 0, 0, 0, 0, 0, 0),
		"empty file":           {},
		"sharded magic, short": []byte(("SLPMSX2\n")),
	}
	for _, name := range sortedKeys(cases) {
		data := cases[name]
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "bad.slpm2")
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := spectrallpm.OpenMapped(path)
			if err == nil {
				t.Fatal("corrupted file accepted")
			}
			if !errors.Is(err, spectrallpm.ErrCorruptIndex) {
				t.Fatalf("err = %v, want ErrCorruptIndex", err)
			}
		})
	}
}

// TestOpenMappedParallelValidation drives the goroutine-chunked validation
// passes (section CRCs, inverse-permutation proof, row-layout proof) by
// lowering the size cutoff and forcing multi-worker fan-out, proving the
// parallel split accepts exactly what the serial path accepts and still
// rejects payload corruption. Running under -race also proves the chunks
// share nothing.
func TestOpenMappedParallelValidation(t *testing.T) {
	defer spectrallpm.SetV2ParallelCutoffForTest(1)()
	oldProcs := runtime.GOMAXPROCS(4) // real fan-out even on 1-CPU hosts
	defer runtime.GOMAXPROCS(oldProcs)

	built := buildTestIndex(t,
		spectrallpm.WithGrid(16, 16), spectrallpm.WithMapping("hilbert"), spectrallpm.WithPageSize(8))
	mapped, err := spectrallpm.OpenMapped(writeV2File(t, built))
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	requireSameServing(t, built, mapped)

	var buf bytes.Buffer
	if _, err := built.WriteToV2(&buf); err != nil {
		t.Fatal(err)
	}
	bad := buf.Bytes()
	bad[len(bad)-4] ^= 0x01 // flip a payload byte: a chunked CRC must catch it
	path := filepath.Join(t.TempDir(), "bad.slpm2")
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := spectrallpm.OpenMapped(path); !errors.Is(err, spectrallpm.ErrCorruptIndex) {
		t.Fatalf("parallel validation accepted corrupt payload: %v", err)
	}
}

// FuzzOpenMapped hammers the v2 decoders — both the materializing and the
// zero-copy borrow path — with mutated frames seeded from the v2 golden
// files and hand-built corruptions of every envelope field. Invariants:
// never panic, never over-read (the borrow path serves views of exactly
// the input buffer), and anything accepted must re-serialize to bytes
// that load again identically. Sharded-magic inputs exercise the
// container decoder the same way.
func FuzzOpenMapped(f *testing.F) {
	for _, name := range []string{"index_v2_hilbert_4x4.golden", "index_v2_points_k2.golden"} {
		data, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		f.Add(data[:len(data)/2]) // truncated mid-section
		f.Add(data[:24])          // header only
		bad := append([]byte(nil), data...)
		bad[16] ^= 1 // table CRC
		f.Add(bad)
		bad2 := append([]byte(nil), data...)
		bad2[len(bad2)-1] ^= 0x80 // payload corruption
		f.Add(bad2)
	}
	f.Add([]byte("SLPMIX2\n"))
	f.Add([]byte("SLPMSX2\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, borrow := range []bool{false, true} {
			if bytes.HasPrefix(data, []byte("SLPMSX2\n")) {
				sx, err := spectrallpm.DecodeShardedV2ForTest(data, borrow)
				if err != nil {
					continue
				}
				var out bytes.Buffer
				if _, err := sx.WriteToV2(&out); err != nil {
					t.Fatalf("accepted sharded index does not re-serialize: %v", err)
				}
				if _, err := spectrallpm.ReadShardedV2(bytes.NewReader(out.Bytes())); err != nil {
					t.Fatalf("re-serialized sharded index does not load: %v", err)
				}
				continue
			}
			ix, err := spectrallpm.DecodeIndexV2ForTest(data, borrow)
			if err != nil {
				continue
			}
			var out bytes.Buffer
			if _, err := ix.WriteToV2(&out); err != nil {
				t.Fatalf("accepted index does not re-serialize: %v", err)
			}
			again, err := spectrallpm.ReadIndexV2(bytes.NewReader(out.Bytes()))
			if err != nil {
				t.Fatalf("re-serialized index does not load: %v", err)
			}
			var out2 bytes.Buffer
			if _, err := again.WriteToV2(&out2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out.Bytes(), out2.Bytes()) {
				t.Fatal("write/read/write not stable")
			}
		}
	})
}

// TestMappedScanZeroAlloc pins the tentpole's zero-copy guarantee: an
// index served from a mapped (borrowed) frame keeps every steady-state
// serving path at zero heap allocations per op, exactly like an owned
// index — the engines cannot tell the difference.
func TestMappedScanZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation makes sync.Pool allocate")
	}
	built := buildTestIndex(t,
		spectrallpm.WithGrid(64, 64), spectrallpm.WithMapping("hilbert"), spectrallpm.WithPageSize(16))
	ix, err := spectrallpm.OpenMapped(writeV2File(t, built))
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	box := spectrallpm.Box{Start: []int{5, 9}, Dims: []int{12, 10}}
	n := 0
	yield := func(int, []int) bool { n++; return true }
	dst := make([]spectrallpm.PageRun, 0, 64)
	paths := map[string]func(){
		"Scan": func() {
			seq, err := ix.Scan(box)
			if err != nil {
				t.Fatal(err)
			}
			seq(yield)
		},
		"ScanInto": func() {
			if err := ix.ScanInto(box, yield); err != nil {
				t.Fatal(err)
			}
		},
		"PagesInto": func() {
			var err error
			dst, err = ix.PagesInto(box, dst[:0])
			if err != nil {
				t.Fatal(err)
			}
		},
		"QueryIO": func() {
			if _, err := ix.QueryIO(box); err != nil {
				t.Fatal(err)
			}
		},
	}
	for _, name := range sortedKeys(paths) {
		fn := paths[name]
		fn() // warm the pools
		if avg := testing.AllocsPerRun(50, fn); avg != 0 {
			t.Errorf("mapped %s allocates %.1f per op in steady state, want 0", name, avg)
		}
	}
	if n == 0 {
		t.Fatal("yield never ran")
	}
}

// TestMappedShardedScanZeroAlloc extends the mapped zero-alloc guarantee
// to the sharded planner over borrowed per-shard frames.
func TestMappedShardedScanZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation makes sync.Pool allocate")
	}
	built, err := spectrallpm.BuildSharded(context.Background(), 4,
		spectrallpm.WithGrid(32, 32), spectrallpm.WithSeed(1), spectrallpm.WithPageSize(8))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sharded.slpm2")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := built.WriteToV2(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	sx, err := spectrallpm.OpenMappedSharded(path)
	if err != nil {
		t.Fatal(err)
	}
	defer sx.Close()
	box := spectrallpm.Box{Start: []int{10, 11}, Dims: []int{12, 9}} // straddles shards
	n := 0
	yield := func(int, []int) bool { n++; return true }
	dst := make([]spectrallpm.PageRun, 0, 64)
	paths := map[string]func(){
		"Scan": func() {
			seq, err := sx.Scan(box)
			if err != nil {
				t.Fatal(err)
			}
			seq(yield)
		},
		"PagesInto": func() {
			var err error
			dst, err = sx.PagesInto(box, dst[:0])
			if err != nil {
				t.Fatal(err)
			}
		},
		"QueryIO": func() {
			if _, err := sx.QueryIO(box); err != nil {
				t.Fatal(err)
			}
		},
	}
	for _, name := range sortedKeys(paths) {
		fn := paths[name]
		fn() // warm the pools
		if avg := testing.AllocsPerRun(50, fn); avg != 0 {
			t.Errorf("mapped sharded %s allocates %.1f per op in steady state, want 0", name, avg)
		}
	}
	if n == 0 {
		t.Fatal("yield never ran")
	}
}
